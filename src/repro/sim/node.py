"""A simulated host: single-threaded CPU driving the protocol engine.

Models what the paper's daemons actually are: one process, one core,
reading from two UDP sockets (token and data on different ports, Section
III-D), paying CPU for every receive, send, and delivery.  The
token/data priority switching is implemented exactly as described: when
data has high priority the token socket is not read unless no data
message is available, and vice versa.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from ..core import (
    DataMessage,
    Deliver,
    Discard,
    Participant,
    ProtocolConfig,
    Ring,
    SendData,
    SendToken,
    Service,
    Token,
)
from ..core.coalesce import (
    JUMBO_COUNT_BYTES,
    JUMBO_ENTRY_BYTES,
    JumboDatagram,
)
from ..core.packing import PackedPayload
from ..net import Frame, LinkSpec, Nic, Simulator, Switch, Timeout, Traffic
from .latency import LatencyRecorder
from .profiles import CostProfile


class SimNode:
    """One ring participant bound to the simulated network."""

    __slots__ = (
        "sim", "pid", "profile", "spec", "recorder", "participant",
        "nic", "_deliver_callback", "_token_queue", "_data_queue",
        "_data_queue_bytes", "_socket_buffer_bytes", "_wakeup",
        "_sim_ready", "_timeout_recv_token", "_timeout_send_token",
        "_recv_timeouts", "_send_timeouts", "_deliver_timeouts",
        "_jumbo_bytes", "socket_drops", "tokens_resent",
        "_retransmit_deadline", "_trace_send", "_trace_delivery",
        "_trace_coalesce", "_process",
    )

    def __init__(
        self,
        sim: Simulator,
        pid: int,
        ring: Ring,
        config: ProtocolConfig,
        profile: CostProfile,
        spec: LinkSpec,
        switch: Switch,
        recorder: LatencyRecorder,
        deliver_callback: Optional[Callable[[int, DataMessage], None]] = None,
    ) -> None:
        self.sim = sim
        self.pid = pid
        self.profile = profile
        self.spec = spec
        self.recorder = recorder
        self.participant = Participant(pid, ring, config)
        self.nic = Nic(sim, pid, spec, switch.receive)
        switch.attach(pid, self._on_frame)
        self._deliver_callback = deliver_callback

        self._token_queue: Deque[Token] = deque()
        self._data_queue: Deque[Frame] = deque()
        self._data_queue_bytes = 0
        self._socket_buffer_bytes = spec.socket_buffer_bytes
        self._wakeup = sim.signal("node%d" % pid)
        self._sim_ready = sim._ready
        # Timeout objects are immutable, so the CPU-charge pauses — a
        # handful of distinct cost values repeated millions of times — are
        # cached per payload size instead of allocated per event.
        self._timeout_recv_token = Timeout(profile.recv_token_cpu_s)
        self._timeout_send_token = Timeout(profile.send_token_cpu_s)
        self._recv_timeouts: dict = {}
        self._send_timeouts: dict = {}
        self._deliver_timeouts: dict = {}
        self._jumbo_bytes = config.jumbo_datagram_bytes
        self.socket_drops = 0
        self.tokens_resent = 0
        self._retransmit_deadline = 0.0
        # Lifecycle-trace hooks (repro.obs.lifecycle).  None when no
        # tracer is attached: the send/deliver paths pay one ``is not
        # None`` test each, nothing else.
        self._trace_send: Optional[Callable] = None
        self._trace_delivery: Optional[Callable] = None
        self._trace_coalesce: Optional[Callable] = None
        self._process = sim.spawn(self._cpu_loop(), "cpu%d" % pid)

    def set_trace_hooks(
        self,
        send: Optional[Callable] = None,
        delivery: Optional[Callable] = None,
        coalesce: Optional[Callable] = None,
    ) -> None:
        """Install lifecycle-trace driver hooks (attach before run()).

        ``send(message, retransmission, coalesced)`` fires when the NIC
        accepts a data datagram; ``delivery(message, t_ordered,
        t_delivered)`` once per delivered message — ``t_ordered`` is
        the sim instant the participant returned the Deliver action,
        ``t_delivered`` the instant the delivery's CPU charge finished;
        ``coalesce(messages)`` when a jumbo batch forms.
        """
        self._trace_send = send
        self._trace_delivery = delivery
        self._trace_coalesce = coalesce

    # -- application-facing -------------------------------------------------

    def submit(
        self,
        payload: Any,
        service: Service,
        payload_size: int,
    ) -> None:
        """Inject one application message (timestamped now)."""
        self.participant.submit(
            payload, service, payload_size, submitted_at=self.sim.now
        )

    @property
    def backlog(self) -> int:
        return self.participant.backlog

    # -- network-facing -------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        if frame.traffic is Traffic.TOKEN:
            # Token socket: tokens are tiny and rare; the buffer holds
            # any realistic number of them.
            self._token_queue.append(frame.payload)
        else:
            wire = frame.wire
            if self._data_queue_bytes + wire > self._socket_buffer_bytes:
                self.socket_drops += 1
                return
            self._data_queue.append(frame)
            self._data_queue_bytes += wire
        # Inlined Signal.fire (value=None): one call per received frame.
        waiters = self._wakeup._waiters
        if waiters:
            self._sim_ready.extend(waiters)
            waiters.clear()

    def start_with_token(self, token: Token) -> None:
        """Install the first regular token (membership's hand-off)."""
        self._token_queue.append(token)
        self._wakeup.fire()

    # -- the single-threaded daemon loop ----------------------------------------

    def _cpu_loop(self):
        profile = self.profile
        participant = self.participant
        token_queue = self._token_queue
        data_queue = self._data_queue
        wakeup = self._wakeup
        timeout_recv_token = self._timeout_recv_token
        recv_timeouts = self._recv_timeouts
        data_recv_cost = profile.data_recv_cost
        on_token = participant.on_token
        on_data = participant.on_data
        # With coalescing on, token handling routes its SendData bursts
        # through the jumbo batcher; receive-side delivery always uses
        # the plain executor (``on_data`` never emits sends).
        execute = (
            self._execute if self._jumbo_bytes is None
            else self._execute_jumbo
        )
        execute_plain = self._execute
        jumbo = JumboDatagram
        # Locals for the inlined delivery path (see the data branch).
        sim = self.sim
        pid = self.pid
        record = self.recorder.record
        deliver_timeouts = self._deliver_timeouts
        deliver_cost = profile.deliver_cost
        deliver_callback = self._deliver_callback
        packed = PackedPayload
        # Direct read of the priority tracker's flag: the public
        # ``participant.token_has_priority`` property costs two Python
        # calls per loop iteration, and this loop runs once per frame.
        priority = participant._priority
        while True:
            if token_queue and (priority._token_high or not data_queue):
                token = token_queue.popleft()
                yield timeout_recv_token
                actions = on_token(token)
                if actions:
                    yield from execute(actions)
            elif data_queue:
                frame = data_queue.popleft()
                self._data_queue_bytes -= frame.wire
                message: DataMessage = frame.payload
                if type(message) is jumbo:
                    # One receive syscall (fixed cost) for the whole
                    # coalesced datagram — that amortization is what
                    # jumbo framing buys on the receive side.
                    size = message.payload_size
                    pause = recv_timeouts.get(size)
                    if pause is None:
                        pause = recv_timeouts[size] = Timeout(
                            data_recv_cost(size)
                        )
                    yield pause
                    for inner in message.messages:
                        actions = on_data(inner)
                        if actions:
                            yield from execute_plain(actions)
                    continue
                size = message.payload_size
                pause = recv_timeouts.get(size)
                if pause is None:
                    pause = recv_timeouts[size] = Timeout(data_recv_cost(size))
                yield pause
                actions = on_data(message)
                if actions:
                    # ``on_data`` returns only Deliver actions (delivery is
                    # the sole side effect of receiving a data message), so
                    # the Deliver arm of ``_execute`` is inlined here — on
                    # the in-order fast path every received message
                    # delivers immediately, and the sub-generator per
                    # receive was measurable.
                    # Attribute (not a captured local): the tracer may
                    # attach between spawn and run().  The release time
                    # is now — the participant returned the batch at
                    # this instant, before any delivery CPU charge.
                    trace_delivery = self._trace_delivery
                    if trace_delivery is not None:
                        t_ordered = sim.now
                    for action in actions:
                        delivered = action.message
                        dsize = delivered.payload_size
                        pause = deliver_timeouts.get(dsize)
                        if pause is None:
                            pause = deliver_timeouts[dsize] = Timeout(
                                deliver_cost(dsize)
                            )
                        yield pause
                        payload = delivered.payload
                        if isinstance(payload, packed):
                            for item in payload.items:
                                record(pid, delivered.service,
                                       item.submitted_at, sim.now,
                                       item.payload_size)
                        else:
                            record(pid, delivered.service,
                                   delivered.submitted_at, sim.now,
                                   delivered.payload_size)
                        if trace_delivery is not None:
                            trace_delivery(delivered, t_ordered, sim.now)
                        if deliver_callback is not None:
                            deliver_callback(pid, delivered)
            else:
                yield wakeup

    def _execute(self, actions):
        """Run an action list, yielding Timeouts for each CPU charge.

        Dispatches on the exact action type — the action algebra is a
        closed union (:data:`repro.core.actions.Action`), so this is
        equivalent to the isinstance chain and cheaper per action.
        """
        profile = self.profile
        pid = self.pid
        sim = self.sim
        nic_send = self.nic.send
        record = self.recorder.record
        header_bytes = profile.header_bytes
        send_timeouts = self._send_timeouts
        deliver_timeouts = self._deliver_timeouts
        deliver_callback = self._deliver_callback
        trace_send = self._trace_send
        trace_delivery = self._trace_delivery
        if trace_delivery is not None:
            # The participant returned this batch at the current instant
            # — every Deliver in it was ordered (released) now, before
            # any send/delivery CPU below shifts the clock.
            t_ordered = sim.now
        data = Traffic.DATA
        for action in actions:
            kind = type(action)
            if kind is SendData:
                message = action.message
                size = message.payload_size
                pause = send_timeouts.get(size)
                if pause is None:
                    pause = send_timeouts[size] = Timeout(
                        profile.data_send_cost(size)
                    )
                yield pause
                nic_send(Frame(pid, None, data, size + header_bytes, message))
                if trace_send is not None:
                    trace_send(message, action.retransmission, False)
            elif kind is SendToken:
                yield self._timeout_send_token
                nic_send(Frame(
                    pid, action.dst, Traffic.TOKEN,
                    action.token.size, action.token,
                ))
                self._arm_token_retransmit(action)
            elif kind is Deliver:
                message = action.message
                size = message.payload_size
                pause = deliver_timeouts.get(size)
                if pause is None:
                    pause = deliver_timeouts[size] = Timeout(
                        profile.deliver_cost(size)
                    )
                yield pause
                payload = message.payload
                if isinstance(payload, PackedPayload):
                    # Packed packets: account each application message
                    # individually (its own submit time and size).
                    for item in payload.items:
                        record(pid, message.service, item.submitted_at,
                               sim.now, item.payload_size)
                else:
                    record(pid, message.service, message.submitted_at,
                           sim.now, message.payload_size)
                if trace_delivery is not None:
                    trace_delivery(message, t_ordered, sim.now)
                if deliver_callback is not None:
                    deliver_callback(pid, message)
            elif kind is Discard:
                pass  # garbage collection is free compared to the rest

    def _execute_jumbo(self, actions):
        """Like :meth:`_execute`, coalescing consecutive SendData runs.

        Batches are bounded by ``config.jumbo_datagram_bytes`` and flush
        on overflow, on any non-send action (a SendToken must keep its
        place after the pre-token sends), and at the end of the action
        list.  Coalescing never spans action lists — like packing, it
        only groups what one token handling already emitted, so no
        batching delay is introduced.
        """
        cap = self._jumbo_bytes
        base = self.profile.header_bytes + JUMBO_COUNT_BYTES
        batch: list = []
        batch_bytes = base
        for action in actions:
            if type(action) is SendData:
                message = action.message
                addition = JUMBO_ENTRY_BYTES + message.payload_size
                if batch and batch_bytes + addition > cap:
                    yield from self._flush_jumbo(batch, batch_bytes)
                    batch = []
                    batch_bytes = base
                batch.append(message)
                batch_bytes += addition
            else:
                if batch:
                    yield from self._flush_jumbo(batch, batch_bytes)
                    batch = []
                    batch_bytes = base
                yield from self._execute((action,))
        if batch:
            yield from self._flush_jumbo(batch, batch_bytes)

    def _flush_jumbo(self, batch, batch_bytes):
        """Send one batch: a lone packet goes plain, more go as a jumbo."""
        profile = self.profile
        send_timeouts = self._send_timeouts
        trace_send = self._trace_send
        if len(batch) == 1:
            # Exactly the plain-datagram send: same bytes, same cost.
            message = batch[0]
            size = message.payload_size
            pause = send_timeouts.get(size)
            if pause is None:
                pause = send_timeouts[size] = Timeout(
                    profile.data_send_cost(size)
                )
            yield pause
            self.nic.send(Frame(
                self.pid, None, Traffic.DATA,
                size + profile.header_bytes, message,
            ))
            if trace_send is not None:
                trace_send(message, False, False)
            return
        datagram = JumboDatagram(tuple(batch))
        size = datagram.payload_size
        # One send syscall (fixed cost) for the whole coalesced datagram.
        pause = send_timeouts.get(size)
        if pause is None:
            pause = send_timeouts[size] = Timeout(
                profile.data_send_cost(size)
            )
        yield pause
        self.nic.send(Frame(
            self.pid, None, Traffic.DATA, batch_bytes, datagram,
        ))
        if trace_send is not None:
            if self._trace_coalesce is not None:
                self._trace_coalesce(batch)
            for message in batch:
                trace_send(message, False, True)

    # -- token-loss recovery --------------------------------------------------

    def _arm_token_retransmit(self, send: SendToken, attempt: int = 0) -> None:
        timeout = self.participant.config.token_retransmit_timeout_s
        deadline = self.sim.now + timeout
        self._retransmit_deadline = deadline
        self.sim.call_at(deadline, self._maybe_retransmit, send, attempt)

    def _maybe_retransmit(self, send: SendToken, attempt: int) -> None:
        participant = self.participant
        if participant.last_token_sent is not send.token:
            return  # we have handled a newer token since
        if participant.progress_since_token_send():
            return
        if attempt >= participant.config.token_retransmit_limit:
            return  # membership's problem now (token loss declared)
        self.tokens_resent += 1
        self.nic.send(
            Frame(
                src=self.pid,
                dst=send.dst,
                traffic=Traffic.TOKEN,
                size=send.token.size,
                payload=send.token,
            )
        )
        self._arm_token_retransmit(send, attempt + 1)
