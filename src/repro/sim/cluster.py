"""A full simulated deployment: N hosts, one switch, rate-driven clients.

This is the benchmark substrate: it reproduces the paper's setup of
eight servers, each running one daemon, one sending client injecting at
a fixed rate, and one receiving client receiving everything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core import ProtocolConfig, Ring, Service, initial_token
from ..net import (
    FabricMonitor,
    LinkSpec,
    Simulator,
    Switch,
    Timeout,
)
from ..net.loss import LossModel, derive_port_loss, no_loss
from ..obs.registry import MetricsRegistry
from .latency import LatencyRecorder, LatencySummary
from .node import SimNode
from .profiles import CostProfile


@dataclass
class SimResult:
    """Everything a benchmark needs from one simulated run."""

    protocol: str
    profile: str
    link: str
    payload_size: int
    service: Service
    offered_bps: float
    achieved_bps: float
    latency: LatencySummary
    #: True when the system could not sustain the offered load.
    saturated: bool
    duration_s: float
    switch_drops: int
    nic_drops: int
    socket_drops: int
    tokens_resent: int
    retransmissions: int
    end_backlog: int
    rounds_per_s: float

    @property
    def achieved_mbps(self) -> float:
        return self.achieved_bps / 1e6

    @property
    def latency_us(self) -> float:
        return self.latency.mean_s * 1e6

    def row(self) -> str:
        return "%-12s %-8s %8.0f Mbps -> %8.0f Mbps  lat %8.0f us%s" % (
            self.protocol, self.profile,
            self.offered_bps / 1e6, self.achieved_bps / 1e6,
            self.latency_us, "  SATURATED" if self.saturated else "",
        )


class SimCluster:
    """Build and run one configuration of the simulated testbed."""

    def __init__(
        self,
        n_nodes: int,
        spec: LinkSpec,
        profile: CostProfile,
        config: ProtocolConfig,
        payload_size: int = 1350,
        service: Service = Service.AGREED,
        loss: Optional[LossModel] = None,
        seed: int = 0,
        deliver_callback: Optional[Callable[[int, object], None]] = None,
        ring_id: int = 0,
    ) -> None:
        self.sim = Simulator()
        self.spec = spec
        self.profile = profile
        self.config = config
        self.payload_size = payload_size
        self.service = service
        self.seed = seed
        self.ring = Ring.of(range(n_nodes), ring_id=ring_id)
        self.switch = Switch(self.sim, spec)
        self.recorder = LatencyRecorder()
        self._loss = loss or no_loss
        self.nodes: Dict[int, SimNode] = {}
        for pid in self.ring:
            # Injected loss applies on the shared fabric: wrap each
            # port's delivery via the switch loss hook.  The delivery
            # hook (multiring's merge feed, or any other observer)
            # fires once per delivered DataMessage per node.
            self.nodes[pid] = SimNode(
                self.sim, pid, self.ring, config, profile, spec,
                self.switch, self.recorder,
                deliver_callback=deliver_callback,
            )
        if loss is not None:
            for pid in self.ring:
                self.switch.set_port_loss(pid, derive_port_loss(loss, pid))
        self.monitor = FabricMonitor(
            self.sim, self.switch, [n.nic for n in self.nodes.values()]
        )
        self.metrics = MetricsRegistry()
        self._register_metrics()
        #: Lifecycle tracer, if attached (see :meth:`attach_tracer`).
        self.tracer = None
        self._injectors_started = False

    def _register_metrics(self) -> None:
        """Expose every cluster counter through the unified registry.

        All bound views over the live attributes the nodes already
        increment — registering costs nothing on the hot paths.
        """
        metrics = self.metrics
        for pid, node in self.nodes.items():
            stats = node.participant.stats
            for name in (
                "tokens_handled", "duplicate_tokens", "messages_initiated",
                "messages_sent_pre_token", "messages_sent_post_token",
                "retransmissions_sent", "retransmissions_requested",
                "data_received", "data_duplicates", "delivered", "discarded",
            ):
                metrics.bind("core.participant." + name, stats, name, node=pid)
            metrics.bind("sim.node.socket_drops", node, "socket_drops",
                         node=pid)
            metrics.bind("sim.node.tokens_resent", node, "tokens_resent",
                         node=pid)
            metrics.bind_fn(
                "core.participant.backlog",
                (lambda participant=node.participant: participant.backlog),
                node=pid, kind="gauge",
            )
        self.monitor.register_metrics(metrics)

    # -- capture ---------------------------------------------------------------

    def attach_capture(self, writer) -> None:
        """Record every switch-ingress frame into an ``.rcap`` writer.

        Accepts a :class:`repro.wire.capture.CaptureWriter`; the tap
        encodes each frame's payload with the real wire codec, so a sim
        capture is byte-comparable with an emulation capture.
        """
        from ..wire.capture import SimCaptureTap

        self.switch.set_capture(SimCaptureTap(self.sim, writer))

    def attach_tracer(self, label: str = ""):
        """Attach a lifecycle tracer (sim clock); call before :meth:`run`.

        Returns the :class:`repro.obs.lifecycle.LifecycleTracer`; after
        the run, write it out with ``tracer.write(path)`` and analyze
        with ``python -m repro.cli trace-analyze``.
        """
        from ..obs.lifecycle import sim_tracer

        if self.tracer is not None:
            raise RuntimeError("tracer already attached")
        self.tracer = sim_tracer(self, label=label)
        return self.tracer

    # -- workload ------------------------------------------------------------

    def inject_at_rate(
        self,
        total_rate_bps: float,
        duration_s: float,
        jitter: float = 0.05,
    ) -> None:
        """Fixed-rate senders: every node injects an equal share.

        ``total_rate_bps`` counts clean payload bits across all senders,
        matching how the paper reports throughput levels.
        """
        if self._injectors_started:
            raise RuntimeError("injectors already started")
        self._injectors_started = True
        n = len(self.ring)
        per_node_rate = total_rate_bps / n / (self.payload_size * 8.0)
        if per_node_rate <= 0:
            return
        interval = 1.0 / per_node_rate
        rng = random.Random(self.seed)

        def injector(node: SimNode, start_offset: float):
            yield Timeout(start_offset)
            sent = 0
            while self.sim.now < duration_s:
                node.submit(None, self.service, self.payload_size)
                sent += 1
                yield Timeout(interval * (1.0 + jitter * (rng.random() - 0.5)))

        for index, pid in enumerate(self.ring):
            offset = interval * index / n
            self.sim.spawn(injector(self.nodes[pid], offset), "inject%d" % pid)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        warmup_s: float,
        offered_bps: float = 0.0,
        max_events: int = 200_000_000,
    ) -> SimResult:
        """Start the ring, run for ``duration_s`` simulated seconds."""
        self.recorder.warmup_until_s = warmup_s
        leader = self.nodes[self.ring.leader]
        leader.start_with_token(initial_token(self.ring.ring_id))
        self.sim.run(until=duration_s, max_events=max_events)

        measure_window = duration_s - warmup_s
        achieved = self.recorder.min_throughput_bps(measure_window)
        end_backlog = sum(node.backlog for node in self.nodes.values())
        # Saturated: a meaningful backlog remains relative to what one
        # second of offered load represents.
        offered_msgs_per_s = offered_bps / (self.payload_size * 8.0)
        saturated = (
            offered_bps > 0
            and end_backlog > max(40, 0.05 * offered_msgs_per_s * measure_window)
        )
        total_retrans = sum(
            node.participant.stats.retransmissions_sent
            for node in self.nodes.values()
        )
        rounds = leader.participant.stats.tokens_handled
        return SimResult(
            protocol="accelerated" if self.config.is_accelerated else "original",
            profile=self.profile.name,
            link=self.spec.name,
            payload_size=self.payload_size,
            service=self.service,
            offered_bps=offered_bps,
            achieved_bps=achieved,
            latency=self.recorder.summary(self.service),
            saturated=saturated,
            duration_s=duration_s,
            switch_drops=self.switch.total_drops(),
            nic_drops=sum(n.nic.drops_overflow for n in self.nodes.values()),
            socket_drops=sum(n.socket_drops for n in self.nodes.values()),
            tokens_resent=sum(n.tokens_resent for n in self.nodes.values()),
            retransmissions=total_retrans,
            end_backlog=end_backlog,
            rounds_per_s=rounds / duration_s if duration_s > 0 else 0.0,
        )


def run_point(
    protocol_config: ProtocolConfig,
    profile: CostProfile,
    spec: LinkSpec,
    offered_bps: float,
    n_nodes: int = 8,
    payload_size: int = 1350,
    service: Service = Service.AGREED,
    duration_s: float = 0.25,
    warmup_s: float = 0.08,
    seed: int = 0,
    loss: Optional[LossModel] = None,
) -> SimResult:
    """One (throughput level, configuration) measurement — the unit every
    figure in the paper is built from."""
    cluster = SimCluster(
        n_nodes, spec, profile, protocol_config,
        payload_size=payload_size, service=service, seed=seed, loss=loss,
    )
    cluster.inject_at_rate(offered_bps, duration_s)
    return cluster.run(duration_s, warmup_s, offered_bps=offered_bps)
