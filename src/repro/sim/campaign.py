"""Seeded random fault-injection campaigns over the packet-level sim.

A campaign generates N random fault scenarios from one seed, runs each
against both the accelerated and the original-Ring configuration, and
validates every Extended Virtual Synchrony axiom over all process
incarnations' logs with :class:`~repro.evs.EVSChecker`.  When a
scenario fails, the campaign greedily shrinks its
:class:`~repro.sim.faults.FaultSchedule` to a minimal failing schedule
(delta-debugging one event at a time) and writes a repro file — seed,
scenario index, shrunk schedule, violations — so a failure is one
command away from a debugger.

Everything is derived from the campaign seed: the schedules, the loss
models, the workload, and the sim itself are deterministic, so the
summary JSON is byte-identical across runs with the same seed.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import ProtocolConfig
from ..evs import EVSChecker
from ..membership import MembershipTimeouts
from ..net import GIGABIT, LinkSpec, Timeout, no_loss
from .evs_node import SimEVSCluster
from .faults import (
    Crash,
    FaultSchedule,
    Heal,
    LossSwap,
    Partition,
    Restart,
    TokenDrop,
)
from .profiles import LIBRARY, CostProfile

#: Where repro files and campaign summaries land.
DEFAULT_OUT_DIR = os.path.join("bench_results", "campaigns")

#: The two protocol configurations every scenario runs against
#: (Section III-D: window 0 + conservative priority IS the original
#: Ring protocol, so this doubles as an acceleration regression net).
ACCELERATED_WINDOWS = (0, 2)

_TIMEOUTS = MembershipTimeouts(
    token_loss_ticks=30, gather_ticks=20, commit_ticks=40,
    probe_interval_ticks=15,
)


def _config_for(accelerated_window: int) -> ProtocolConfig:
    if accelerated_window == 0:
        return ProtocolConfig.original_ring(personal_window=10)
    return ProtocolConfig.accelerated(
        personal_window=10, accelerated_window=accelerated_window
    )


def _scenario_seed(seed: int, index: int) -> int:
    """Stable per-scenario seed (independent of scenario count)."""
    return (seed * 1_000_003 + 7919 * (index + 1)) & 0x7FFFFFFF


@dataclass
class CampaignOptions:
    """Campaign-wide knobs, all defaulted to the smoke-size campaign."""

    seed: int = 0
    scenarios: int = 10
    n_nodes: int = 3
    horizon_s: float = 0.8
    drain_s: float = 0.6
    converge_timeout_s: float = 6.0
    submit_interval_s: float = 0.02
    spec: LinkSpec = GIGABIT
    profile: CostProfile = LIBRARY
    out_dir: str = DEFAULT_OUT_DIR
    windows: Tuple[int, ...] = ACCELERATED_WINDOWS
    #: Deterministic log corruption applied before checking — the
    #: checker self-test (``--selftest-violation``).  Takes the logs
    #: dict and mutates it in place.
    corrupt_logs: Optional[Callable[[Dict], None]] = None


@dataclass
class ScenarioResult:
    """Outcome of one (schedule, accelerated_window) run."""

    index: int
    accelerated_window: int
    converged: bool
    violations: List[str] = field(default_factory=list)
    delivered: Dict[str, int] = field(default_factory=dict)
    repro_path: Optional[str] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations) or not self.converged


def generate_schedule(rng: random.Random, n_nodes: int,
                      horizon_s: float) -> FaultSchedule:
    """Draw a random fault schedule for one scenario.

    At most ``n_nodes - 2`` processes are crashed without restart so a
    majority keeps the service alive; partitions always heal within the
    horizon (the runner force-heals during cleanup anyway, but keeping
    schedules self-contained makes shrunk repros readable).
    """
    schedule = FaultSchedule()
    pids = list(range(n_nodes))
    crashed: set = set()
    max_crashes = max(1, n_nodes - 2)
    for _ in range(rng.randint(1, 3)):
        at_s = round(rng.uniform(0.05, horizon_s * 0.6), 4)
        kind = rng.choice(("crash", "partition", "token_drop", "loss_swap"))
        if kind == "crash":
            candidates = [p for p in pids if p not in crashed]
            if len(crashed) >= max_crashes or not candidates:
                kind = "token_drop"
            else:
                pid = rng.choice(candidates)
                crashed.add(pid)
                schedule.add(Crash(at_s, pid))
                if rng.random() < 0.6:
                    restart_at = round(
                        at_s + rng.uniform(0.1, horizon_s * 0.35), 4
                    )
                    schedule.add(Restart(restart_at, pid))
                    crashed.discard(pid)
                continue
        if kind == "partition":
            shuffled = pids[:]
            rng.shuffle(shuffled)
            cut = rng.randint(1, n_nodes - 1)
            schedule.add(Partition(
                at_s,
                (tuple(sorted(shuffled[:cut])),
                 tuple(sorted(shuffled[cut:]))),
            ))
            heal_at = round(at_s + rng.uniform(0.15, horizon_s * 0.4), 4)
            schedule.add(Heal(heal_at))
        elif kind == "token_drop":
            schedule.add(TokenDrop(at_s, count=rng.randint(1, 3)))
        elif kind == "loss_swap":
            schedule.add(LossSwap(
                at_s,
                model="bernoulli",
                p=round(rng.uniform(0.002, 0.02), 4),
                seed=rng.randrange(1 << 30),
                spare_token=True,
            ))
            off_at = round(at_s + rng.uniform(0.1, horizon_s * 0.4), 4)
            schedule.add(LossSwap(off_at, model="none"))
    return schedule


def run_scenario(
    schedule: FaultSchedule,
    accelerated_window: int,
    options: CampaignOptions,
    observability: Optional[Dict] = None,
) -> Tuple[bool, List[str], Dict[str, int]]:
    """Run one schedule against one configuration.

    Returns ``(converged, violations, delivered_counts)``.  The flow:
    converge cold, start per-node workload injectors, install the
    schedule, run the horizon, then clean up (heal, clear filters and
    loss, restart every crashed node), stop the workload, re-converge
    and drain, and finally check every incarnation's log.

    When ``observability`` (a dict) is passed, it is filled in place
    with the run's drop counters and per-class traffic breakdown — the
    campaign summary threads these into its JSON without changing this
    function's return shape.
    """
    cluster = SimEVSCluster(
        options.n_nodes, options.spec, options.profile,
        _config_for(accelerated_window), _TIMEOUTS,
    )
    cluster.run_until_converged(timeout_s=options.converge_timeout_s)

    submitted: Dict[Tuple[int, int], List[Any]] = {}
    stop = {"flag": False}

    def injector(node):
        counter = 0
        while True:
            yield Timeout(options.submit_interval_s)
            if stop["flag"]:
                return
            if node.crashed:
                continue
            payload = "m%d.%d.%d" % (node.pid, node.incarnation, counter)
            counter += 1
            node.submit(payload)
            submitted.setdefault(
                (node.pid, node.incarnation), []
            ).append(payload)

    for pid in sorted(cluster.nodes):
        node = cluster.nodes[pid]
        cluster.sim.spawn(injector(node), "inject%d" % pid)

    schedule.install(cluster)
    cluster.run_for(options.horizon_s)

    # Cleanup: make the world whole again so the run can quiesce.
    cluster.heal()
    cluster.switch.clear_fault_filters()
    for pid in cluster.switch.host_ids:
        cluster.switch.set_port_loss(pid, no_loss)
    for pid in sorted(cluster.nodes):
        if cluster.nodes[pid].crashed:
            cluster.restart(pid)
    stop["flag"] = True
    converged = True
    try:
        cluster.run_until_converged(timeout_s=options.converge_timeout_s)
    except RuntimeError:
        converged = False
    cluster.run_for(options.drain_s)

    logs = cluster.logs()
    if options.corrupt_logs is not None:
        options.corrupt_logs(logs)
    # Self-delivery holds for the final incarnation of every live node
    # (cleanup restarted the crashed ones); earlier incarnations died
    # mid-flight and EVS does not promise them delivery.
    final_keys = {
        (pid, node.incarnation)
        for pid, node in cluster.nodes.items() if not node.crashed
    }
    relevant_submitted = {
        key: payloads for key, payloads in submitted.items()
        if key in final_keys
    }
    checker = EVSChecker()
    checker.check_logs(logs, relevant_submitted)

    delivered = {
        "%d.%d" % key: sum(
            1 for event in log
            if not hasattr(event, "configuration")
        )
        for key, log in sorted(logs.items())
    }
    if observability is not None:
        observability.update(collect_observability(cluster))
    return converged, checker.violations, delivered


def collect_observability(cluster: SimEVSCluster) -> Dict:
    """Deterministic drop/traffic block for campaign and churn summaries.

    ``malformed``/``oversize`` are the wire-boundary counters the UDP
    transport tracks; the packet-level sim has no byte parsing, so they
    are structurally present but always zero here — the key layout
    matches the emulation's so tooling reads both.
    """
    switch = cluster.switch
    ports = [switch.port(h) for h in switch.host_ids]
    return {
        "drops": {
            "port_overflow": sum(p.drops_overflow for p in ports),
            "port_injected": sum(p.drops_injected for p in ports),
            "partition": switch.drops_partition,
            "fault_filter": switch.drops_fault,
            "malformed": 0,
            "oversize": 0,
        },
        "traffic": {
            "frames_by_class": dict(sorted(switch.class_frames.items())),
            "bytes_by_class": dict(sorted(switch.class_bytes.items())),
        },
    }


def shrink_schedule(
    schedule: FaultSchedule,
    fails: Callable[[FaultSchedule], bool],
) -> FaultSchedule:
    """Greedy delta-debugging: drop or weaken events while failing.

    Removal is tried first; once nothing can be removed, recurring
    events (flap/churn) are weakened by lowering their repeat count.
    Every accepted candidate strictly decreases the measure
    ``(event count, total repeats)``, so the loop terminates even for
    self-rescheduling generator events.
    """
    changed = True
    while changed and len(schedule):
        changed = False
        for index in range(len(schedule)):
            candidate = schedule.without(index)
            if fails(candidate):
                schedule = candidate
                changed = True
                break
        if changed:
            continue
        for index in range(len(schedule)):
            for candidate in schedule.weakened(index):
                if fails(candidate):
                    schedule = candidate
                    changed = True
                    break
            if changed:
                break
    return schedule


def run_campaign(options: CampaignOptions,
                 progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the full campaign; returns the deterministic summary dict."""

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    scenario_reports: List[Dict] = []
    failures = 0
    for index in range(options.scenarios):
        rng = random.Random(_scenario_seed(options.seed, index))
        schedule = generate_schedule(rng, options.n_nodes, options.horizon_s)
        runs: List[Dict] = []
        for window in options.windows:
            observability: Dict = {}
            converged, violations, delivered = run_scenario(
                schedule, window, options, observability=observability,
            )
            result = ScenarioResult(
                index=index,
                accelerated_window=window,
                converged=converged,
                violations=violations,
                delivered=delivered,
            )
            if result.failed:
                failures += 1
                result.repro_path = _emit_repro(
                    schedule, result, options
                )
                note("scenario %d aw=%d FAILED (%d violation(s)) -> %s"
                     % (index, window, len(violations), result.repro_path))
            else:
                note("scenario %d aw=%d ok (%d events)"
                     % (index, window, len(schedule)))
            runs.append({
                "accelerated_window": window,
                "converged": result.converged,
                "violations": result.violations,
                "delivered": result.delivered,
                "repro": result.repro_path,
                "drops": observability.get("drops", {}),
                "traffic": observability.get("traffic", {}),
            })
        scenario_reports.append({
            "index": index,
            "scenario_seed": _scenario_seed(options.seed, index),
            "schedule": schedule.to_jsonable(),
            "runs": runs,
        })
    summary = {
        "seed": options.seed,
        "scenarios": options.scenarios,
        "n_nodes": options.n_nodes,
        "windows": list(options.windows),
        "horizon_s": options.horizon_s,
        "failures": failures,
        "results": scenario_reports,
    }
    path = write_summary(summary, options.out_dir)
    summary["summary_path"] = path
    return summary


def _emit_repro(schedule: FaultSchedule, result: ScenarioResult,
                options: CampaignOptions) -> str:
    """Shrink the failing schedule and write the repro file."""

    def fails(candidate: FaultSchedule) -> bool:
        converged, violations, _delivered = run_scenario(
            candidate, result.accelerated_window, options
        )
        return bool(violations) or not converged

    shrunk = shrink_schedule(schedule, fails)
    repro = {
        "seed": options.seed,
        "scenario_index": result.index,
        "scenario_seed": _scenario_seed(options.seed, result.index),
        "accelerated_window": result.accelerated_window,
        "n_nodes": options.n_nodes,
        "horizon_s": options.horizon_s,
        "violations": result.violations,
        "schedule": shrunk.to_jsonable(),
        "original_schedule": schedule.to_jsonable(),
        "schedule_human": shrunk.describe(),
    }
    os.makedirs(options.out_dir, exist_ok=True)
    name = "repro_seed%d_s%d_aw%d.json" % (
        options.seed, result.index, result.accelerated_window
    )
    path = os.path.join(options.out_dir, name)
    with open(path, "w") as handle:
        json.dump(repro, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_summary(summary: Dict, out_dir: str) -> str:
    """Byte-stable campaign summary (sorted keys, no wall-clock).

    The filename carries seed AND scenario count so a smoke-sized run
    never clobbers a full campaign's standing summary.
    """
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(
        out_dir,
        "campaign_seed%d_n%d.json" % (summary["seed"], summary["scenarios"]),
    )
    with open(path, "w") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay_repro(path: str) -> Tuple[bool, List[str]]:
    """Re-run a repro file's shrunk schedule; returns (converged, violations)."""
    with open(path) as handle:
        repro = json.load(handle)
    options = CampaignOptions(
        seed=repro["seed"],
        n_nodes=repro["n_nodes"],
        horizon_s=repro["horizon_s"],
    )
    schedule = FaultSchedule.from_jsonable(repro["schedule"])
    converged, violations, _delivered = run_scenario(
        schedule, repro["accelerated_window"], options
    )
    return converged, violations


def corrupt_first_log(logs: Dict) -> None:
    """Deterministic ordering corruption for the checker self-test.

    Swaps the first two application messages of the lexicographically
    first log that has at least two — survivors keep the true order, so
    virtual synchrony (and seq order) must flag it.
    """
    for key in sorted(logs):
        log = logs[key]
        message_indices = [
            i for i, event in enumerate(log)
            if not hasattr(event, "configuration")
        ]
        if len(message_indices) >= 2:
            a, b = message_indices[0], message_indices[1]
            log[a], log[b] = log[b], log[a]
            return
