"""Round-level tracing of simulated runs.

Measures the quantity the Accelerated Ring protocol is designed to
shrink: the token round time.  Attach a tracer to a cluster before
running; afterwards it reports per-node token inter-handling times,
rotation rate, and the overlap the acceleration creates (how often a
node is still multicasting when its successor handles the token —
visible as post-token sends per round).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core import events as ev
from .cluster import SimCluster


@dataclass
class RoundStats:
    """Aggregate view of one node's token handlings."""

    count: int
    mean_round_s: float
    min_round_s: float
    max_round_s: float


class RoundTracer:
    """Records token-handling timestamps per node.

    When the cluster carries a metrics registry (every
    :class:`SimCluster` does), the tracer's aggregates re-register
    through it — ``sim.rounds.*`` — while this class stays the
    analysis-facing API.
    """

    def __init__(self, cluster: SimCluster, registry=None) -> None:
        self.cluster = cluster
        self.handle_times: Dict[int, List[float]] = {
            pid: [] for pid in cluster.ring
        }
        self.post_token_sends: Dict[int, int] = {pid: 0 for pid in cluster.ring}
        self.new_messages: Dict[int, int] = {pid: 0 for pid in cluster.ring}
        for pid, node in cluster.nodes.items():
            hub = node.participant.hub
            hub.subscribe(ev.TOKEN_HANDLED, self._make_token_hook(pid))
            hub.subscribe(ev.MESSAGE_SENT, self._make_send_hook(pid))
        if registry is None:
            registry = getattr(cluster, "metrics", None)
        if registry is not None:
            self.register_metrics(registry)

    def register_metrics(self, registry) -> None:
        """Expose the round aggregates through a MetricsRegistry."""
        for pid in self.cluster.ring:
            registry.bind_fn(
                "sim.rounds.token_handlings",
                (lambda p=pid: len(self.handle_times[p])),
                node=pid, kind="counter",
            )
            registry.bind_fn(
                "sim.rounds.post_token_sends",
                (lambda p=pid: self.post_token_sends[p]),
                node=pid, kind="counter",
            )
            registry.bind_fn(
                "sim.rounds.new_messages",
                (lambda p=pid: self.new_messages[p]),
                node=pid, kind="counter",
            )
        registry.bind_fn("sim.rounds.mean_round_s", self.mean_round_s,
                         kind="gauge")
        registry.bind_fn("sim.rounds.overlap_fraction",
                         self.overlap_fraction, kind="gauge")

    def _make_token_hook(self, node_pid: int):
        def hook(pid: int, received, sent, new_messages, retransmissions) -> None:
            if pid != node_pid:
                return
            self.handle_times[node_pid].append(self.cluster.sim.now)
            self.new_messages[node_pid] += new_messages

        return hook

    def _make_send_hook(self, node_pid: int):
        def hook(pid: int, message) -> None:
            if pid == node_pid and message.sent_after_token:
                self.post_token_sends[node_pid] += 1

        return hook

    # -- analysis -----------------------------------------------------------

    def round_times(self, pid: int, skip: int = 2) -> List[float]:
        """Inter-handling intervals at one node (skipping warm-up)."""
        times = self.handle_times[pid]
        return [
            b - a for a, b in zip(times[skip:], times[skip + 1:])
        ]

    def stats(self, pid: int, skip: int = 2) -> RoundStats:
        intervals = self.round_times(pid, skip)
        if not intervals:
            return RoundStats(0, 0.0, 0.0, 0.0)
        return RoundStats(
            count=len(intervals),
            mean_round_s=sum(intervals) / len(intervals),
            min_round_s=min(intervals),
            max_round_s=max(intervals),
        )

    def mean_round_s(self, skip: int = 2) -> float:
        """Mean token round time across all nodes."""
        means = [
            self.stats(pid, skip).mean_round_s
            for pid in self.cluster.ring
            if self.stats(pid, skip).count > 0
        ]
        return sum(means) / len(means) if means else 0.0

    def overlap_fraction(self) -> float:
        """Share of initiated messages sent after the token."""
        sent = sum(self.new_messages.values())
        post = sum(self.post_token_sends.values())
        return post / sent if sent else 0.0
