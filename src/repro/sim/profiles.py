"""Implementation cost profiles: library, daemon, and Spread.

The paper evaluates the same protocol inside three implementations that
differ only in per-message processing overhead:

* **library** — a bare prototype: the application lives in the protocol
  process; delivery is a function call.
* **daemon** — a daemon per host with one sending and one receiving
  client over IPC; send/receive paths each cross an IPC socket.
* **spread** — the full Spread toolkit: large descriptive headers and an
  expensive delivery path (group-name analysis, per-client routing).

The constants below are calibrated to the paper's testbed (Xeon
E3-1270v2, single-threaded daemons) so that the simulator lands near the
paper's measured *maximum* throughputs on 10-gigabit (where CPU is the
bottleneck: library ≈ 4.6, daemon ≈ 3.3, Spread ≈ 2.3 Gbps with 1350-byte
payloads) while keeping all three well under the serialization delay on
1-gigabit (where the network is the bottleneck).  Per-byte terms are
fitted from the paper's 8850-byte maxima (7.3 / 6 / 5.3 Gbps).  The
absolute values are testbed-specific; the *shape* of every figure comes
from the protocol dynamics, not from these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.messages import DATA_HEADER_SIZE


@dataclass(frozen=True)
class CostProfile:
    """Single-threaded CPU costs of one implementation, in seconds/bytes."""

    name: str
    #: Protocol header added to each payload on the wire (the paper uses
    #: 1350-byte payloads in 1500-byte MTUs: 150 bytes of headers incl.
    #: IP/UDP; Spread needs all of it for group/sender names).
    header_bytes: int
    #: CPU to receive + process one data message (recvfrom, buffer insert).
    recv_data_cpu_s: float
    #: CPU to receive + process one token.
    recv_token_cpu_s: float
    #: CPU to multicast one data message (includes reading it from the
    #: sending client over IPC where applicable).
    send_data_cpu_s: float
    #: CPU to unicast the token.
    send_token_cpu_s: float
    #: CPU to deliver one message to the application / receiving client.
    deliver_cpu_s: float
    #: Per-payload-byte CPU on the receive path (kernel copies, checksum).
    recv_byte_cpu_s: float
    #: Per-payload-byte CPU on the send path.
    send_byte_cpu_s: float
    #: Per-payload-byte CPU on the delivery path (IPC copy to client).
    deliver_byte_cpu_s: float

    def data_recv_cost(self, payload_size: int) -> float:
        return self.recv_data_cpu_s + payload_size * self.recv_byte_cpu_s

    def data_send_cost(self, payload_size: int) -> float:
        return self.send_data_cpu_s + payload_size * self.send_byte_cpu_s

    def deliver_cost(self, payload_size: int) -> float:
        return self.deliver_cpu_s + payload_size * self.deliver_byte_cpu_s

    def with_overrides(self, **kwargs) -> "CostProfile":
        return replace(self, **kwargs)


#: The library-based prototype: minimal overhead, in-process delivery.
#: Its header is exactly the repo's own wire framing — what
#: ``repro.wire.codec`` puts around a raw-bytes data payload — so the
#: simulated figures and a real-socket deployment share one byte model.
LIBRARY = CostProfile(
    name="library",
    header_bytes=DATA_HEADER_SIZE,
    recv_data_cpu_s=0.80e-6,
    recv_token_cpu_s=0.80e-6,
    send_data_cpu_s=0.60e-6,
    send_token_cpu_s=0.60e-6,
    deliver_cpu_s=0.25e-6,
    recv_byte_cpu_s=0.80e-9,
    send_byte_cpu_s=0.80e-9,
    deliver_byte_cpu_s=0.25e-9,
)

#: The daemon-based prototype: client communication over IPC, one group.
DAEMON = CostProfile(
    name="daemon",
    header_bytes=90,
    recv_data_cpu_s=0.90e-6,
    recv_token_cpu_s=0.90e-6,
    send_data_cpu_s=1.20e-6,   # includes the IPC read from the sender
    send_token_cpu_s=0.70e-6,
    deliver_cpu_s=1.00e-6,     # IPC write to the receiving client
    recv_byte_cpu_s=0.80e-9,
    send_byte_cpu_s=0.80e-9,
    deliver_byte_cpu_s=0.35e-9,
)

#: Full Spread: large headers, expensive delivery (group-name analysis,
#: multi-group routing, per-client fan-out).
SPREAD = CostProfile(
    name="spread",
    header_bytes=150,
    recv_data_cpu_s=1.10e-6,
    recv_token_cpu_s=1.10e-6,
    send_data_cpu_s=1.40e-6,
    send_token_cpu_s=0.80e-6,
    deliver_cpu_s=2.20e-6,
    recv_byte_cpu_s=0.80e-9,
    send_byte_cpu_s=0.80e-9,
    deliver_byte_cpu_s=0.45e-9,
)

PROFILES = {profile.name: profile for profile in (LIBRARY, DAEMON, SPREAD)}
