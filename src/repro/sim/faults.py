"""Deterministic fault-injection schedules for the packet-level sim.

A :class:`FaultSchedule` is a declarative, serializable list of timed
fault events — crash/restart, partition/heal, scheduled token drops,
loss-model swaps — executed *by the discrete-event engine itself*
(each event is a ``call_at`` callback), so a faulty run is exactly as
seed-reproducible as a clean one.  This is what lets the campaign
runner (:mod:`repro.sim.campaign`) shrink a failing scenario to a
minimal schedule and emit a byte-stable repro file.

The schedule operates on a :class:`~repro.sim.evs_node.SimEVSCluster`
(or anything exposing ``sim``, ``switch``, ``crash``, ``restart``,
``set_partition`` and ``heal``), keeping the DSL decoupled from the
cluster construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net import Traffic
from ..net.loss import (
    BernoulliLoss,
    PerFragmentLoss,
    derive_port_loss,
    no_loss,
)


class FaultScheduleError(ValueError):
    """A malformed fault event or schedule."""


@dataclass(frozen=True)
class Crash:
    """Fail-stop ``pid`` at ``at_s`` (idempotent if already down)."""

    at_s: float
    pid: int


@dataclass(frozen=True)
class Restart:
    """Boot a fresh incarnation of ``pid`` (no-op unless crashed)."""

    at_s: float
    pid: int


@dataclass(frozen=True)
class Join:
    """Spawn a brand-new node — a pid the deployment has never seen —
    at ``at_s`` (idempotent if the pid already exists).

    Open membership: unlike :class:`Restart` (which re-boots a known
    host), the joiner is built from nothing mid-run.  The cluster must
    expose ``spawn(pid)``; the gossip-detection path does — the new
    node's pings introduce it to the live members' detectors, and
    ``notify_peer_alive`` pulls it into the next gather round.
    """

    at_s: float
    pid: int


@dataclass(frozen=True)
class Partition:
    """Split the switch into isolated port groups at ``at_s``.

    Hosts not listed in any group become isolated singletons.
    """

    at_s: float
    groups: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class Heal:
    """Remove any partition at ``at_s``."""

    at_s: float


@dataclass(frozen=True)
class TokenDrop:
    """Swallow the next ``count`` token frames at the crossbar.

    Exercises Totem's token-loss machinery (retransmit timers first,
    then membership's token-loss timeout) without touching data frames.
    """

    at_s: float
    count: int = 1


@dataclass(frozen=True)
class LossSwap:
    """Install a new loss model on switch egress ports at ``at_s``.

    ``model`` is ``"bernoulli"``, ``"fragment"`` or ``"none"``; the
    stochastic models are derived per port (seeded per port id) so the
    swap is deterministic regardless of port iteration order.  ``pids``
    limits the swap to specific ports (None means every port).
    """

    at_s: float
    model: str = "bernoulli"
    p: float = 0.01
    seed: int = 0
    spare_token: bool = True
    pids: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class Flap:
    """Recurring crash/restart of one node (a flapping daemon).

    Starting at ``at_s``: crash ``pid``, restart it ``down_s`` later,
    and repeat the cycle every ``period_s`` until ``repeats`` cycles
    have run.  The event reschedules itself through the event engine
    with a strictly decreasing repeat count, so execution always
    terminates and serialization stays a single declarative entry.
    """

    at_s: float
    pid: int
    down_s: float = 0.1
    period_s: float = 0.4
    repeats: int = 3


@dataclass(frozen=True)
class Churn:
    """Sustained seeded churn over a pool of nodes.

    Every ``period_s`` (``repeats`` times), pick a deterministic victim
    among the not-currently-crashed members of ``pids`` (seeded by
    ``(seed, remaining repeats)``, so the victim sequence is a pure
    function of the event), crash it, and restart it ``down_s`` later.
    A victim is only taken when at least two candidates are live, so
    churn alone never extinguishes the pool.
    """

    at_s: float
    pids: Tuple[int, ...]
    down_s: float = 0.15
    period_s: float = 0.5
    repeats: int = 5
    seed: int = 0


FaultEvent = Any  # union of the event dataclasses above

#: Recurring events carry a ``repeats`` count the shrinker may lower.
RECURRING_KINDS = (Flap, Churn)

_EVENT_KINDS = {
    "crash": Crash,
    "restart": Restart,
    "join": Join,
    "partition": Partition,
    "heal": Heal,
    "token_drop": TokenDrop,
    "loss_swap": LossSwap,
    "flap": Flap,
    "churn": Churn,
}
_KIND_OF = {cls: kind for kind, cls in _EVENT_KINDS.items()}


class _TokenDropFilter:
    """Ingress filter swallowing the next N token frames, then detaching."""

    def __init__(self, switch, count: int) -> None:
        self._switch = switch
        self.remaining = count

    def __call__(self, frame) -> bool:
        if frame.traffic is not Traffic.TOKEN or self.remaining <= 0:
            return False
        self.remaining -= 1
        if self.remaining <= 0:
            self._switch.remove_fault_filter(self)
        return True


def _build_loss(event: LossSwap):
    if event.model == "none":
        return None
    if event.model == "bernoulli":
        return BernoulliLoss(event.p, seed=event.seed,
                             spare_token=event.spare_token)
    if event.model == "fragment":
        return PerFragmentLoss(event.p, seed=event.seed,
                               spare_token=event.spare_token)
    raise FaultScheduleError("unknown loss model %r" % (event.model,))


@dataclass
class FaultSchedule:
    """An ordered, serializable set of timed fault events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            self._validate(event)
        # Stable sort: ties keep authoring order, so execution order is
        # part of the schedule's identity (and of its serialization).
        self.events = sorted(self.events, key=lambda e: e.at_s)

    @staticmethod
    def _validate(event: FaultEvent) -> None:
        if event.at_s < 0:
            raise FaultScheduleError("event before t=0: %r" % (event,))
        if isinstance(event, RECURRING_KINDS):
            if event.repeats < 1:
                raise FaultScheduleError(
                    "recurring event needs repeats >= 1: %r" % (event,)
                )
            if event.period_s <= 0 or event.down_s < 0:
                raise FaultScheduleError(
                    "recurring event needs period_s > 0 and down_s >= 0: "
                    "%r" % (event,)
                )

    def __len__(self) -> int:
        return len(self.events)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._validate(event)
        self.events.append(event)
        self.events.sort(key=lambda e: e.at_s)
        return self

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the index-th event removed (shrinking primitive)."""
        return FaultSchedule(
            [e for i, e in enumerate(self.events) if i != index]
        )

    def weakened(self, index: int) -> List["FaultSchedule"]:
        """Strictly-smaller variants of the index-th event, for shrinking.

        Recurring events shrink by lowering ``repeats`` (try a single
        cycle first, then half).  Every candidate strictly reduces the
        schedule's total repeat count, so a shrink loop that only
        accepts candidates from here (or :meth:`without`) terminates.
        """
        event = self.events[index]
        if not isinstance(event, RECURRING_KINDS) or event.repeats <= 1:
            return []
        candidates = []
        for repeats in sorted({1, event.repeats // 2}):
            if repeats < event.repeats:
                smaller = replace(event, repeats=repeats)
                candidates.append(FaultSchedule(
                    [smaller if i == index else e
                     for i, e in enumerate(self.events)]
                ))
        return candidates

    # -- execution ----------------------------------------------------------

    def install(self, cluster, base_time_s: Optional[float] = None) -> None:
        """Register every event with the cluster's event engine.

        Event times are relative to ``base_time_s`` (default: the
        simulator's current time), so a schedule authored as "faults
        start at t=0" composes with any amount of warm-up.
        """
        base = cluster.sim.now if base_time_s is None else base_time_s
        for event in self.events:
            cluster.sim.call_at(base + event.at_s, self._apply, event, cluster)

    @staticmethod
    def _apply(event: FaultEvent, cluster) -> None:
        kind = type(event)
        if kind is Crash:
            cluster.crash(event.pid)
        elif kind is Restart:
            if cluster.nodes[event.pid].crashed:
                cluster.restart(event.pid)
        elif kind is Join:
            if event.pid not in cluster.nodes:
                cluster.spawn(event.pid)
        elif kind is Partition:
            cluster.set_partition(*event.groups)
        elif kind is Heal:
            cluster.heal()
        elif kind is Flap:
            now = cluster.sim.now
            cluster.crash(event.pid)
            cluster.sim.call_at(
                now + event.down_s,
                FaultSchedule._restart_if_crashed, event.pid, cluster,
            )
            if event.repeats > 1:
                cluster.sim.call_at(
                    now + event.period_s,
                    FaultSchedule._apply,
                    replace(event, repeats=event.repeats - 1),
                    cluster,
                )
        elif kind is Churn:
            now = cluster.sim.now
            # Victim choice is a pure function of (seed, remaining
            # repeats) plus who happens to be live — deterministic for
            # a deterministic run.
            rng = random.Random(
                (event.seed * 0x9E3779B1 + event.repeats) & 0xFFFFFFFF
            )
            live = [
                pid for pid in event.pids if not cluster.nodes[pid].crashed
            ]
            if len(live) >= 2:
                victim = rng.choice(live)
                cluster.crash(victim)
                cluster.sim.call_at(
                    now + event.down_s,
                    FaultSchedule._restart_if_crashed, victim, cluster,
                )
            if event.repeats > 1:
                cluster.sim.call_at(
                    now + event.period_s,
                    FaultSchedule._apply,
                    replace(event, repeats=event.repeats - 1),
                    cluster,
                )
        elif kind is TokenDrop:
            cluster.switch.add_fault_filter(
                _TokenDropFilter(cluster.switch, event.count)
            )
        elif kind is LossSwap:
            model = _build_loss(event)
            pids = event.pids if event.pids is not None \
                else tuple(cluster.switch.host_ids)
            for pid in pids:
                if model is None:
                    cluster.switch.set_port_loss(pid, no_loss)
                else:
                    cluster.switch.set_port_loss(
                        pid, derive_port_loss(model, pid)
                    )
        else:
            raise FaultScheduleError("unknown fault event %r" % (event,))

    @staticmethod
    def _restart_if_crashed(pid: int, cluster) -> None:
        # Guarded: an overlapping schedule (or the campaign cleanup)
        # may have restarted the node already.
        if cluster.nodes[pid].crashed:
            cluster.restart(pid)

    # -- serialization ------------------------------------------------------

    def to_jsonable(self) -> List[Dict[str, Any]]:
        """Plain-JSON event list (stable field order via sorted keys)."""
        out: List[Dict[str, Any]] = []
        for event in self.events:
            entry: Dict[str, Any] = {"kind": _KIND_OF[type(event)]}
            for name in event.__dataclass_fields__:
                value = getattr(event, name)
                if isinstance(value, tuple):
                    value = [
                        list(v) if isinstance(v, tuple) else v for v in value
                    ]
                entry[name] = value
            out.append(entry)
        return out

    @classmethod
    def from_jsonable(cls, data: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        events: List[FaultEvent] = []
        for entry in data:
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_cls = _EVENT_KINDS.get(kind)
            if event_cls is None:
                raise FaultScheduleError("unknown event kind %r" % (kind,))
            if event_cls is Partition:
                entry["groups"] = tuple(
                    tuple(group) for group in entry["groups"]
                )
            if event_cls is LossSwap and entry.get("pids") is not None:
                entry["pids"] = tuple(entry["pids"])
            if event_cls is Churn:
                entry["pids"] = tuple(entry["pids"])
            events.append(event_cls(**entry))
        return cls(events)

    def describe(self) -> List[str]:
        """One human-readable line per event (repro-file commentary)."""
        lines = []
        for event in self.events:
            kind = _KIND_OF[type(event)]
            detail = {
                name: getattr(event, name)
                for name in event.__dataclass_fields__
                if name != "at_s"
            }
            lines.append("t=%.4fs %s %s" % (event.at_s, kind, detail))
        return lines
