"""``python -m repro.analysis`` — alias for ``python -m repro.cli lint``."""

import sys

from ..cli import run_lint_command

if __name__ == "__main__":
    raise SystemExit(run_lint_command(sys.argv[1:]))
