"""The analysis engine: discover, parse once, run every rule.

One :func:`analyze_tree` call walks the package, parses each file into
a single AST shared by all rules, and returns an
:class:`AnalysisReport` with findings sorted for byte-stable output.
Module dotted names (``repro.core.participant``) — not filesystem
paths — drive rule jurisdiction, so the same engine lints an installed
package, a checkout, or a test fixture handed an explicit module name.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .rules import ALL_RULES, Finding, ModuleContext, Rule

#: Packages whose replica-local decisions must be deterministic and
#: IO-free (the sans-IO core the simulator's proofs are about).
SANS_IO_MODULES = (
    "repro.core",
    "repro.evs",
    "repro.sim",
    "repro.membership",
    "repro.multiring",
    "repro.totem",
)

#: IO/concurrency modules the sans-IO packages may not import.
IO_BOUNDARY_BANNED = (
    "socket", "asyncio", "threading", "selectors", "ssl",
    "subprocess", "multiprocessing", "concurrent", "signal", "fcntl",
)

#: Modules on allocation-rate-critical paths: every class must be a
#: complete ``__slots__`` class (see rules/slots.py for exemptions).
HOT_PATH_MODULES = (
    "repro.core",
    "repro.net",
    "repro.sim.node",
    "repro.membership.gossip",
    "repro.obs.registry",
    "repro.wire.codec",
)

#: Modules subject to the wire-drift rules (struct sizes, tag spaces).
WIRE_MODULES = (
    "repro.wire",
    "repro.core.messages",
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Rule jurisdiction: which dotted-module prefixes get which rules."""

    sans_io_modules: Tuple[str, ...] = SANS_IO_MODULES
    io_boundary_banned: Tuple[str, ...] = IO_BOUNDARY_BANNED
    hot_path_modules: Tuple[str, ...] = HOT_PATH_MODULES
    wire_modules: Tuple[str, ...] = WIRE_MODULES
    tag_registry_module: str = "repro.wire.tags"


@dataclass
class AnalysisReport:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "finding_count": len(self.findings),
            "parse_errors": list(self.parse_errors),
            "findings": [f.to_dict() for f in self.findings],
        }


def analyze_source(source: str, path: str, module: str,
                   config: Optional[AnalysisConfig] = None,
                   rules: Optional[Sequence[Rule]] = None,
                   ) -> List[Finding]:
    """Run the rule set over one source string (the fixture-test door)."""
    config = config or AnalysisConfig()
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path, module, source, tree)
    findings: List[Finding] = []
    for rule in (rules if rules is not None else ALL_RULES):
        if rule.applies(module, config):
            findings.extend(rule.check(ctx, config))
    _disambiguate(findings)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.key))
    return findings


def analyze_file(path: str, module: str,
                 config: Optional[AnalysisConfig] = None,
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, path, module, config, rules)


def iter_package_files(package_root: str) -> Iterator[Tuple[str, str]]:
    """Yield (path, dotted module) for every ``.py`` under the package.

    ``package_root`` is the directory of the package itself (the one
    holding ``repro``'s ``__init__.py``); its basename seeds the dotted
    names.
    """
    package_root = os.path.abspath(package_root)
    package_name = os.path.basename(package_root.rstrip(os.sep))
    for dirpath, dirnames, filenames in os.walk(package_root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__"
        )
        rel = os.path.relpath(dirpath, package_root)
        parts = [] if rel == "." else rel.split(os.sep)
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            mod_parts = [package_name] + parts
            if filename != "__init__.py":
                mod_parts.append(filename[:-3])
            yield path, ".".join(mod_parts)


def analyze_tree(package_root: str,
                 config: Optional[AnalysisConfig] = None,
                 rules: Optional[Sequence[Rule]] = None) -> AnalysisReport:
    """Lint every module under ``package_root`` (e.g. ``src/repro``)."""
    config = config or AnalysisConfig()
    report = AnalysisReport()
    base = os.path.dirname(os.path.abspath(package_root))
    for path, module in iter_package_files(package_root):
        report.files_scanned += 1
        rel = os.path.relpath(path, base)
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, OSError, UnicodeDecodeError) as exc:
            report.parse_errors.append("%s: %s" % (rel, exc))
            continue
        ctx = ModuleContext(rel, module, source, tree)
        for rule in (rules if rules is not None else ALL_RULES):
            if rule.applies(module, config):
                report.findings.extend(rule.check(ctx, config))
    _disambiguate(report.findings)
    report.findings.sort(
        key=lambda f: (f.path, f.line, f.col, f.rule, f.key)
    )
    return report


def _disambiguate(findings: List[Finding]) -> None:
    """Suffix repeated fingerprints (#2, #3, …) in line order."""
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    counts: Dict[str, int] = {}
    for finding in findings:
        fp = finding.fingerprint
        seen = counts.get(fp, 0)
        counts[fp] = seen + 1
        if seen:
            finding.key = "%s#%d" % (finding.key, seen + 1)
