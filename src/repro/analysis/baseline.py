"""Suppression baseline for grandfathered findings.

A baseline file maps finding *fingerprints* (rule + module + site key,
no line numbers — see ``rules/base.py``) to a short record of what was
suppressed.  ``lint`` subtracts baselined fingerprints before deciding
its exit code, so a finding that predates the gate does not block CI —
but a *new* finding, or an old one that moved to a new site, does.

The committed file is ``lint_baseline.json`` at the repo root; the
intended steady state is an empty one (docs/LINTING.md).  Regenerate
with ``python -m repro.cli lint --write-baseline`` after deliberately
accepting a finding, and never to paper over a regression.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Set

from .rules import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint_baseline.json"


def load_baseline(path: str) -> Set[str]:
    """Fingerprints suppressed by the baseline file (empty if absent)."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            "baseline %s has version %r; this tool writes version %d"
            % (path, data.get("version"), BASELINE_VERSION)
        )
    return set(data.get("suppressions", {}))


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write a baseline suppressing exactly ``findings`` (byte-stable)."""
    suppressions: Dict[str, Dict[str, object]] = {}
    for finding in findings:
        suppressions[finding.fingerprint] = {
            "path": finding.path,
            "message": finding.message,
        }
    payload = {
        "version": BASELINE_VERSION,
        "tool": "python -m repro.cli lint --write-baseline",
        "suppressions": dict(sorted(suppressions.items())),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def split_by_baseline(findings: Sequence[Finding], baseline: Set[str],
                      ) -> Dict[str, List[Finding]]:
    """Partition findings into ``new`` and ``baselined`` lists."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.fingerprint in baseline else new).append(finding)
    return {"new": new, "baselined": old}
