"""Sans-IO boundary lint.

The protocol engine is sans-IO by construction (DESIGN.md): handling a
message returns actions; drivers own sockets, clocks and threads.  The
boundary is what makes the packet-level simulator a *proof* about the
production engine — the moment ``repro.core`` imports ``socket`` the
two worlds can diverge.  ``IO-IMPORT`` rejects any import of an IO or
concurrency module (``socket``, ``asyncio``, ``threading``,
``selectors``, …) inside the sans-IO packages; only the driver-side
packages (``emulation``, ``spreadlike.daemon``, ``harness``, ``bench``)
may touch them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, ModuleContext, Rule, module_matches


class SansIOImportRule(Rule):
    """IO-IMPORT: IO/concurrency imports inside sans-IO modules."""

    rule_id = "IO-IMPORT"

    def applies(self, module: str, config) -> bool:
        return module_matches(module, config.sans_io_modules)

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        banned = frozenset(config.io_boundary_banned)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue  # relative imports stay inside the package
                names = [node.module.split(".")[0]]
            else:
                continue
            for name in names:
                if name in banned:
                    yield self.finding(
                        ctx, node,
                        "sans-IO module imports '%s'; IO and "
                        "concurrency belong to the drivers "
                        "(emulation/, spreadlike/daemon, harness/)"
                        % name,
                        "import:%s" % name,
                    )
