"""Rule registry for ``repro.analysis``.

Adding a rule (DESIGN.md §14): subclass :class:`~.base.Rule` in the
matching family module (or a new one), implement ``applies``/``check``,
and append an instance to :data:`ALL_RULES`.  The fixture-corpus test
(``tests/test_analysis_rules.py``) requires every registered rule id to
have at least one caught-violation fixture and one clean-pass fixture.
"""

from __future__ import annotations

from typing import List, Tuple

from .base import Finding, ModuleContext, Rule, module_matches
from .boundaries import SansIOImportRule
from .determinism import (
    BannedEntropyRule,
    BannedTimeRule,
    SetIterationRule,
    UnseededRngRule,
)
from .slots import SlotsRule
from .wire_drift import WireSizeRule, WireTagRule

ALL_RULES: Tuple[Rule, ...] = (
    BannedTimeRule(),
    BannedEntropyRule(),
    UnseededRngRule(),
    SetIterationRule(),
    SansIOImportRule(),
    SlotsRule(),
    WireSizeRule(),
    WireTagRule(),
)


def all_rule_ids() -> List[str]:
    """Every reportable rule id (families expand to their members)."""
    ids: List[str] = []
    for rule in ALL_RULES:
        ids.extend(getattr(rule, "rule_ids", (rule.rule_id,)))
    return ids


__all__ = [
    "ALL_RULES",
    "Finding",
    "ModuleContext",
    "Rule",
    "all_rule_ids",
    "module_matches",
]
