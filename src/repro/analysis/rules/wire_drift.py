"""Wire-drift lints: struct sizes and tag registries.

The simulator *charges* byte sizes it never serializes, and the codec
*measures* them; ``tests/test_wire_sizes.py`` proves the two agree at
runtime.  These rules move the cheapest half of that proof to review
time:

* ``WIRE-SIZE`` — a module-level size constant whose defining line ends
  in a declared value (``HEADER_SIZE = _HEADER.size  # 12``) is
  evaluated statically — ``struct.Struct`` format strings are run
  through ``struct.calcsize`` and constant arithmetic is folded — and
  a mismatch between computed and declared value is a finding.  An
  unparseable format string is one too.
* ``WIRE-TAG-DUP`` — tag numbers in the central registry
  (:mod:`repro.wire.tags`) must be unique per byte-space: ``TYPE_*``
  (frame header) in one namespace, ``VALUE_*`` + ``OBJECT_TAG_*``
  (the shared TLV tag byte) jointly in another.  Duplicate literal
  keys in a registry dict display (which Python silently collapses)
  are findings as well.
* ``WIRE-TAG-SCATTER`` — outside the registry, no wire module may bind
  a tag-patterned name (``TYPE_*``, ``VALUE_*``, ``OBJECT_TAG_*``,
  ``_V_*``) to an integer literal: new tags go in the registry, and
  everything else refers to them by name.
"""

from __future__ import annotations

import ast
import re
import struct
from typing import Dict, Iterator, List, Optional, Tuple

from .base import Finding, ModuleContext, Rule, module_matches

_TAG_NAME = re.compile(r"^(TYPE_|VALUE_|OBJECT_TAG_|_V_)\w+$")


def _struct_call_format(node: ast.AST, ctx: ModuleContext) -> Optional[str]:
    """The literal format string of a ``struct.Struct("...")`` call."""
    if not isinstance(node, ast.Call) or len(node.args) != 1:
        return None
    target = ctx.resolve_call(node.func)
    if target not in ("struct.Struct", "struct.calcsize"):
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None


class _ConstEvaluator:
    """Folds module-level size arithmetic: ints, Name refs, ``X.size``."""

    __slots__ = ("consts", "structs")

    def __init__(self) -> None:
        self.consts: Dict[str, int] = {}
        self.structs: Dict[str, int] = {}  # name -> calcsize(fmt)

    def eval(self, node: ast.AST) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            return self.consts.get(node.id)
        if isinstance(node, ast.Attribute) and node.attr == "size" and \
                isinstance(node.value, ast.Name):
            return self.structs.get(node.value.id)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            return None
        return None


class WireSizeRule(Rule):
    """WIRE-SIZE: declared size comments vs computed struct sizes."""

    rule_id = "WIRE-SIZE"

    def applies(self, module: str, config) -> bool:
        return module_matches(module, config.wire_modules)

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        evaluator = _ConstEvaluator()
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            fmt = _struct_call_format(node.value, ctx)
            if fmt is not None:
                try:
                    evaluator.structs[target.id] = struct.calcsize(fmt)
                except struct.error as exc:
                    yield self.finding(
                        ctx, node,
                        "struct format %r does not parse: %s"
                        % (fmt, exc),
                        "fmt:%s" % target.id,
                    )
                continue
            value = evaluator.eval(node.value)
            if value is not None:
                evaluator.consts[target.id] = value
            declared = ctx.trailing_int_comment(node)
            if declared is None or value is None:
                continue
            if value != declared:
                yield self.finding(
                    ctx, node,
                    "%s computes to %d but its declaring comment "
                    "says %d — wire size drift"
                    % (target.id, value, declared),
                    "size:%s" % target.id,
                )


def _tag_namespace(name: str) -> Optional[str]:
    if name.startswith("TYPE_") and name != "TYPE_NAMES":
        return "frame"
    if name.startswith("VALUE_") or name.startswith("OBJECT_TAG_"):
        return "tlv"
    return None


class WireTagRule(Rule):
    """WIRE-TAG-DUP / WIRE-TAG-SCATTER: one registry, unique numbers."""

    rule_id = "WIRE-TAG"
    rule_ids = ("WIRE-TAG-DUP", "WIRE-TAG-SCATTER")

    def applies(self, module: str, config) -> bool:
        return module_matches(module, config.wire_modules)

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        if ctx.module == config.tag_registry_module:
            yield from self._check_registry(ctx)
        else:
            yield from self._check_consumer(ctx)
        yield from self._check_dict_displays(ctx)

    def _check_registry(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: Dict[Tuple[str, int], str] = {}
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            namespace = _tag_namespace(target.id)
            if namespace is None:
                continue
            if not (isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, int)):
                continue
            value = node.value.value
            other = seen.get((namespace, value))
            if other is not None:
                yield Finding(
                    "WIRE-TAG-DUP", ctx.path, ctx.module,
                    node.lineno, node.col_offset,
                    "tag %s = %d collides with %s in the %r "
                    "byte-space" % (target.id, value, other, namespace),
                    "dup:%s" % target.id,
                )
            else:
                seen[(namespace, value)] = target.id

    def _check_consumer(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (isinstance(target, ast.Name)
                        and _TAG_NAME.match(target.id)):
                    continue
                if isinstance(node.value, ast.Constant) and \
                        isinstance(node.value.value, int):
                    yield Finding(
                        "WIRE-TAG-SCATTER", ctx.path, ctx.module,
                        node.lineno, node.col_offset,
                        "%s bound to an integer literal outside the "
                        "tag registry; define it in repro.wire.tags "
                        "and import it" % target.id,
                        "scatter:%s" % target.id,
                    )

    def _check_dict_displays(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Registry-style dict displays: duplicate *literal* keys are
        # silently collapsed by Python, so the AST is the only place
        # the collision is still visible.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign) or \
                    not isinstance(node.value, ast.Dict):
                continue
            target = node.targets[0] if len(node.targets) == 1 else None
            if not isinstance(target, ast.Name):
                continue
            if not (target.id.endswith("_NAMES")
                    or target.id.endswith("_SCHEMAS")
                    or target.id.endswith("_TAGS")):
                continue
            seen: Dict[int, int] = {}
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, int):
                    value = key.value
                elif isinstance(key, ast.Name):
                    continue  # name refs are the registry's job to dedup
                else:
                    continue
                if value in seen:
                    yield Finding(
                        "WIRE-TAG-DUP", ctx.path, ctx.module,
                        key.lineno, key.col_offset,
                        "duplicate key %d in %s: Python keeps only "
                        "the last entry" % (value, target.id),
                        "dictdup:%s:%d" % (target.id, value),
                    )
                else:
                    seen[value] = key.lineno
