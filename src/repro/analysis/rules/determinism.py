"""Determinism lints for the sans-IO protocol modules.

Every replica-local decision in a total-order protocol must be a pure
function of delivered events — a wall-clock read, an unseeded RNG, or a
hash-order-dependent iteration in the core is a fingerprint flake (or a
real divergence) waiting to happen.  These rules make the discipline
the ROADMAP describes machine-checkable:

* ``DET-TIME`` — no wall-clock or CPU-clock reads: the ``time`` module
  is banned outright (the sim clock or the driver supplies time), as
  are ``datetime.now``/``utcnow``/``today``.
* ``DET-ENTROPY`` — no OS entropy: ``os.urandom``, ``uuid.uuid1``/
  ``uuid4``, the ``secrets`` module, ``random.SystemRandom``.
* ``DET-RNG`` — no module-level ``random`` state: calls like
  ``random.random()`` share one process-global generator whose stream
  depends on every other caller; protocol code must thread an
  explicitly seeded ``random.Random(seed)`` instead.
* ``DET-SETITER`` — no order-sensitive iteration over ``set``
  expressions: set iteration order depends on element hashes (and, for
  strings, on ``PYTHONHASHSEED``), so a bare ``for`` / list build over
  a set display, ``set()`` call, set comprehension or set-algebra
  expression is flagged unless wrapped in an order-erasing consumer
  (``sorted``, ``min``, ``max``, ``sum``, ``len``, ``any``, ``all``,
  ``set``/``frozenset``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from .base import Finding, ModuleContext, Rule, module_matches, scope_qualname

BANNED_TIME_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

BANNED_ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
})

#: Module-level ``random.*`` functions that read the shared global RNG.
GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss", "normalvariate",
    "lognormvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "seed",
})

#: Callables that consume an iterable without exposing its order.
ORDER_ERASING = frozenset({
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
})


class _SansIORule(Rule):
    def applies(self, module: str, config) -> bool:
        return module_matches(module, config.sans_io_modules)


class BannedTimeRule(_SansIORule):
    """DET-TIME: wall-clock and CPU-clock reads in sans-IO modules."""

    rule_id = "DET-TIME"

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "time":
                        yield self.finding(
                            ctx, node,
                            "sans-IO module imports 'time'; take the "
                            "clock from the driver instead",
                            "import:time",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.module.split(".")[0] == "time" and node.level == 0:
                yield self.finding(
                    ctx, node,
                    "sans-IO module imports from 'time'; take the "
                    "clock from the driver instead",
                    "import:time",
                )
            elif isinstance(node, ast.Call):
                target = ctx.resolve_call(node.func)
                if target in BANNED_TIME_CALLS:
                    yield self.finding(
                        ctx, node,
                        "call to %s in sans-IO module; clocks must come "
                        "from the driver" % target,
                        "%s@%s" % (target, scope_qualname(ctx.tree, node)),
                    )


class BannedEntropyRule(_SansIORule):
    """DET-ENTROPY: OS entropy sources in sans-IO modules."""

    rule_id = "DET-ENTROPY"

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "secrets":
                        yield self.finding(
                            ctx, node,
                            "sans-IO module imports 'secrets' (OS "
                            "entropy); derive values from the seed",
                            "import:secrets",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    node.module.split(".")[0] == "secrets" and \
                    node.level == 0:
                yield self.finding(
                    ctx, node,
                    "sans-IO module imports from 'secrets' (OS "
                    "entropy); derive values from the seed",
                    "import:secrets",
                )
            elif isinstance(node, ast.Call):
                target = ctx.resolve_call(node.func)
                if target in BANNED_ENTROPY_CALLS:
                    yield self.finding(
                        ctx, node,
                        "call to %s in sans-IO module; all randomness "
                        "must derive from the run seed" % target,
                        "%s@%s" % (target, scope_qualname(ctx.tree, node)),
                    )


class UnseededRngRule(_SansIORule):
    """DET-RNG: process-global ``random`` state in sans-IO modules."""

    rule_id = "DET-RNG"

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module and \
                    node.module.split(".")[0] == "random" and \
                    node.level == 0:
                pulled = sorted(
                    alias.name for alias in node.names
                    if alias.name in GLOBAL_RNG_FNS
                )
                if pulled:
                    yield self.finding(
                        ctx, node,
                        "imports global-RNG function(s) %s from "
                        "'random'; use a seeded random.Random instance"
                        % ", ".join(pulled),
                        "import:random-global",
                    )
            elif isinstance(node, ast.Call):
                target = ctx.resolve_call(node.func)
                if target is None:
                    continue
                parts = target.split(".")
                if parts[0] != "random" or len(parts) != 2:
                    continue
                if parts[1] in GLOBAL_RNG_FNS:
                    yield self.finding(
                        ctx, node,
                        "random.%s() uses the process-global RNG; "
                        "thread a seeded random.Random through "
                        "instead" % parts[1],
                        "random.%s@%s"
                        % (parts[1], scope_qualname(ctx.tree, node)),
                    )
                elif parts[1] == "Random" and not node.args and \
                        not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "random.Random() without a seed draws one "
                        "from OS entropy; pass an explicit seed",
                        "random.Random@%s"
                        % scope_qualname(ctx.tree, node),
                    )


def _is_set_expr(node: ast.AST, local_sets: Set[str]) -> bool:
    """True when the expression is syntactically set-valued."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
        return _is_set_expr(node.left, local_sets) or \
            _is_set_expr(node.right, local_sets)
    return False


class SetIterationRule(_SansIORule):
    """DET-SETITER: order-sensitive iteration over set expressions."""

    rule_id = "DET-SETITER"

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        # One pass per function scope (plus the module top level): track
        # local names that are only ever assigned set expressions, then
        # flag order-sensitive iterations.  Tracking is deliberately
        # simple — single-scope, syntactic — to stay predictable.
        scopes = [ctx.tree] + [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            yield from self._check_scope(ctx, scope)

    def _scope_body_nodes(self, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk the scope without descending into nested functions."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _local_set_names(self, scope: ast.AST) -> Set[str]:
        assigned_set: Dict[str, bool] = {}
        for node in self._scope_body_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                is_set = _is_set_expr(node.value, set())
                if name in assigned_set:
                    assigned_set[name] = assigned_set[name] and is_set
                else:
                    assigned_set[name] = is_set
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)) and \
                    isinstance(node.target, ast.Name):
                # Augmented targets keep whatever classification the
                # plain assignments gave them; annotations without a
                # set value reset nothing either.
                continue
        return {name for name, is_set in assigned_set.items() if is_set}

    def _check_scope(self, ctx: ModuleContext,
                     scope: ast.AST) -> Iterator[Finding]:
        local_sets = self._local_set_names(scope)
        qual = "" if isinstance(scope, ast.Module) else \
            scope_qualname(ctx.tree, scope) or getattr(scope, "name", "")
        if not isinstance(scope, ast.Module):
            qual = qual or scope.name

        def emit(node: ast.AST, what: str) -> Finding:
            return self.finding(
                ctx, node,
                "%s iterates a set in hash order; wrap in sorted() "
                "(set order varies with PYTHONHASHSEED)" % what,
                "set-iter@%s:%d" % (
                    qual,
                    getattr(node, "lineno", 0)
                    - getattr(scope, "lineno", 0),
                ),
            )

        # Arguments handed straight to an order-erasing consumer are
        # exempt: sorted(x for x in some_set) is the *fix*, not a bug.
        exempt = set()
        nodes = list(self._scope_body_nodes(scope))
        for node in nodes:
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ORDER_ERASING:
                for arg in node.args:
                    exempt.add(id(arg))

        for node in nodes:
            if isinstance(node, ast.For) and \
                    _is_set_expr(node.iter, local_sets):
                yield emit(node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                if id(node) in exempt:
                    continue
                for comp in node.generators:
                    if _is_set_expr(comp.iter, local_sets):
                        yield emit(comp.iter, "comprehension")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name):
                fn = node.func.id
                if fn in ("list", "tuple", "iter", "enumerate") and \
                        node.args and _is_set_expr(node.args[0],
                                                   local_sets):
                    yield emit(node, "%s()" % fn)
