"""``__slots__`` completeness lints for hot-path modules.

The dispatch kernel's ~3.0M events/s rests on allocation discipline:
per-message objects (frames, actions, tokens) and per-node state
machines are ``__slots__`` classes, so attribute access is an array
index and no per-instance ``__dict__`` is allocated.  A single
forgotten slot silently re-grows the ``__dict__`` on every instance —
no test fails, the kernel just gets slower.  Three rules pin it:

* ``SLOT-MISSING`` — a class in a hot-path module declares no
  ``__slots__`` at all (exempt: enums, exceptions, NamedTuples,
  Protocols, and dataclasses — those get ``SLOT-DATACLASS``).
* ``SLOT-INCOMPLETE`` — ``__slots__`` exists but some ``self.x``
  assignment targets an attribute not in it (nor in a same-module
  base's slots): instances grow a ``__dict__`` for the spill.
* ``SLOT-DATACLASS`` — a ``@dataclass`` in a hot-path module without
  ``slots=True``.

Classes whose bases are defined outside the module are skipped — their
layout cannot be judged statically from one file.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .base import Finding, ModuleContext, Rule, module_matches

#: Base-class names that exempt a class from slot checking entirely.
EXEMPT_BASES = frozenset({
    "Exception", "BaseException", "ValueError", "TypeError", "KeyError",
    "RuntimeError", "AssertionError", "NamedTuple", "Protocol", "Enum",
    "IntEnum", "Flag", "IntFlag", "ABC",
})


def _base_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _base_name(target)
        if name == "dataclass":
            return deco
    return None


def _dataclass_has_slots(deco: ast.AST) -> bool:
    if not isinstance(deco, ast.Call):
        return False
    for keyword in deco.keywords:
        if keyword.arg == "slots":
            return isinstance(keyword.value, ast.Constant) and \
                keyword.value.value is True
    return False


def _declared_slots(node: ast.ClassDef) -> Optional[Set[str]]:
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__slots__":
                    try:
                        value = ast.literal_eval(item.value)
                    except (ValueError, SyntaxError):
                        return set()
                    if isinstance(value, str):
                        return {value}
                    return set(value)
    return None


def _self_stores(node: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
    """(attribute, site) for every ``self.x = ...`` in the class body."""
    stores: List[Tuple[str, ast.AST]] = []
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not item.args.args:
            continue
        self_name = item.args.args[0].arg
        for sub in ast.walk(item):
            if isinstance(sub, ast.Attribute) and \
                    isinstance(sub.ctx, ast.Store) and \
                    isinstance(sub.value, ast.Name) and \
                    sub.value.id == self_name:
                stores.append((sub.attr, sub))
            elif isinstance(sub, ast.AugAssign) and \
                    isinstance(sub.target, ast.Attribute) and \
                    isinstance(sub.target.value, ast.Name) and \
                    sub.target.value.id == self_name:
                stores.append((sub.target.attr, sub))
    return stores


def _class_properties(node: ast.ClassDef) -> Set[str]:
    """Names bound at class level (descriptors, class attrs, methods)."""
    names: Set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(item.name)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(item, ast.AnnAssign) and \
                isinstance(item.target, ast.Name):
            names.add(item.target.id)
    return names


class SlotsRule(Rule):
    """SLOT-MISSING / SLOT-INCOMPLETE / SLOT-DATACLASS (one walker)."""

    rule_id = "SLOT"
    rule_ids = ("SLOT-MISSING", "SLOT-INCOMPLETE", "SLOT-DATACLASS")

    def applies(self, module: str, config) -> bool:
        return module_matches(module, config.hot_path_modules)

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node for node in ctx.tree.body
            if isinstance(node, ast.ClassDef)
        }
        for name, node in classes.items():
            yield from self._check_class(ctx, node, classes)

    def _resolve_bases(self, node: ast.ClassDef,
                       classes: Dict[str, ast.ClassDef],
                       ) -> Tuple[Optional[Set[str]], bool]:
        """(union of same-module base slots, all bases resolvable)."""
        slots: Set[str] = set()
        for base in node.bases:
            name = _base_name(base)
            if name in EXEMPT_BASES or (name or "").endswith(
                    ("Error", "Exception", "Warning")):
                return None, False  # exception/enum family: exempt
            if name in classes:
                parent = classes[name]
                parent_slots = _declared_slots(parent)
                if parent_slots is None:
                    return None, False  # unslotted base: __dict__ anyway
                slots |= parent_slots
                parent_base_slots, ok = self._resolve_bases(
                    parent, classes)
                if not ok and parent.bases:
                    return None, False
                slots |= parent_base_slots or set()
            elif name is not None:
                return None, False  # base defined elsewhere: skip class
        return slots, True

    def _check_class(self, ctx: ModuleContext, node: ast.ClassDef,
                     classes: Dict[str, ast.ClassDef],
                     ) -> Iterator[Finding]:
        deco = _dataclass_decorator(node)
        if deco is not None:
            if not _dataclass_has_slots(deco):
                yield Finding(
                    "SLOT-DATACLASS", ctx.path, ctx.module,
                    node.lineno, node.col_offset,
                    "dataclass %s in a hot-path module lacks "
                    "slots=True; instances carry a __dict__" % node.name,
                    node.name,
                )
            return
        base_slots, resolvable = self._resolve_bases(node, classes)
        if not resolvable and node.bases:
            return
        declared = _declared_slots(node)
        if declared is None:
            yield Finding(
                "SLOT-MISSING", ctx.path, ctx.module,
                node.lineno, node.col_offset,
                "class %s in a hot-path module declares no __slots__"
                % node.name,
                node.name,
            )
            return
        covered = declared | (base_slots or set()) | \
            _class_properties(node)
        seen: Set[str] = set()
        for attr, site in _self_stores(node):
            if attr in covered or attr in seen:
                continue
            seen.add(attr)
            yield Finding(
                "SLOT-INCOMPLETE", ctx.path, ctx.module,
                site.lineno, site.col_offset,
                "%s.%s is assigned on self but missing from "
                "__slots__; instances grow a __dict__"
                % (node.name, attr),
                "%s.%s" % (node.name, attr),
            )
