"""Shared infrastructure for analysis rules.

A rule is a stateless object: ``applies`` decides from the module's
dotted name whether the rule has jurisdiction, ``check`` walks the
parsed AST and yields :class:`Finding` objects.  Rules never import the
code under analysis — everything is derived from the source text and
the AST, so a file with a runtime-breaking bug still lints.

Findings carry a *key* — a line-number-free description of the finding
site (``"Participant.frame_id"``, ``"import:socket"``) — so the
fingerprint used by the suppression baseline survives unrelated edits
that shift line numbers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


class Finding:
    """One rule violation at one site."""

    __slots__ = ("rule", "path", "module", "line", "col", "message", "key")

    def __init__(self, rule: str, path: str, module: str, line: int,
                 col: int, message: str, key: str) -> None:
        self.rule = rule
        self.path = path
        self.module = module
        self.line = line
        self.col = col
        self.message = message
        self.key = key

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (no line numbers)."""
        return "%s:%s:%s" % (self.rule, self.module, self.key)

    def render(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule, self.message,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def __repr__(self) -> str:
        return "Finding(%s)" % self.render()


class ModuleContext:
    """Everything a rule may inspect about one source file."""

    __slots__ = ("path", "module", "source", "lines", "tree", "_imports")

    def __init__(self, path: str, module: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._imports: Optional[Dict[str, str]] = None

    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> dotted origin, from top-level and nested imports.

        ``import time`` maps ``time -> time``; ``from time import time as
        t`` maps ``t -> time.time``; ``from . import codec`` is recorded
        as a relative origin (``.codec``) which no absolute ban list
        matches — bans target stdlib modules by absolute name.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        origin = alias.name if alias.asname else \
                            alias.name.split(".")[0]
                        table[local] = origin
                elif isinstance(node, ast.ImportFrom):
                    prefix = ("." * node.level) + (node.module or "")
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        local = alias.asname or alias.name
                        table[local] = prefix + "." + alias.name \
                            if prefix else alias.name
            self._imports = table
        return self._imports

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """Dotted origin of a call target, or None if not import-rooted.

        ``time.time`` with ``import time`` resolves to ``"time.time"``;
        ``t()`` with ``from time import time as t`` resolves the same;
        ``self.clock()`` resolves to None.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.imports.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))

    def trailing_int_comment(self, node: ast.AST) -> Optional[int]:
        """The ``# 40``-style declared value ending the node's last line."""
        end = getattr(node, "end_lineno", None) or node.lineno
        line = self.lines[end - 1] if end - 1 < len(self.lines) else ""
        if "#" not in line:
            return None
        comment = line.rsplit("#", 1)[1].strip()
        if comment.isdigit():
            return int(comment)
        return None


class Rule:
    """Base class: subclasses set ``rule_id`` and implement ``check``."""

    rule_id = ""

    def applies(self, module: str, config) -> bool:
        raise NotImplementedError

    def check(self, ctx: ModuleContext, config) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str,
                key: str) -> Finding:
        return Finding(
            self.rule_id, ctx.path, ctx.module,
            getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            message, key,
        )


def module_matches(module: str, prefixes: Sequence[str]) -> bool:
    """True when ``module`` is one of ``prefixes`` or nested inside one."""
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


def scope_qualname(tree: ast.Module, target: ast.AST) -> str:
    """Dotted path of defs/classes enclosing ``target`` (``""`` at top)."""
    path: List[str] = []

    def descend(node: ast.AST, names: Tuple[str, ...]) -> bool:
        for child in ast.iter_child_nodes(node):
            if child is target:
                path.extend(names)
                return True
            child_names = names
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                child_names = names + (child.name,)
            if descend(child, child_names):
                return True
        return False

    descend(tree, ())
    return ".".join(path)
