"""``repro.analysis`` — determinism & protocol-invariant static analysis.

An AST-based lint engine with repo-specific rule families (DESIGN.md
§14):

* determinism (``DET-*``)  — no clocks, OS entropy, global RNG state or
  hash-order iteration in the sans-IO protocol modules;
* boundary (``IO-IMPORT``) — the sans-IO packages may not import IO or
  concurrency modules;
* slots (``SLOT-*``)       — hot-path classes declare complete
  ``__slots__``;
* wire drift (``WIRE-*``)  — struct sizes match their declared
  constants and wire tags stay unique inside
  :mod:`repro.wire.tags`.

Run it with ``python -m repro.cli lint`` (or ``python -m
repro.analysis``); CI runs ``make lint`` as a hard gate.
"""

from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from .engine import (
    AnalysisConfig,
    AnalysisReport,
    analyze_file,
    analyze_source,
    analyze_tree,
    iter_package_files,
)
from .rules import ALL_RULES, Finding, Rule, all_rule_ids

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "AnalysisReport",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "Rule",
    "all_rule_ids",
    "analyze_file",
    "analyze_source",
    "analyze_tree",
    "iter_package_files",
    "load_baseline",
    "split_by_baseline",
    "write_baseline",
]
