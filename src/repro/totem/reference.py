"""An independent reference implementation of the original Ring protocol.

This is a deliberately separate, straightforward transcription of the
Totem single-ring ordering protocol (Amir et al., ICDCS 1993 / TOCS
1995) — the baseline the paper compares against.  It shares **no code**
with :mod:`repro.core`, so differential tests can drive both over the
same workload and loss pattern and require identical delivery sequences
when the core is configured as the original protocol
(``ProtocolConfig.original_ring()``).

It is also the baseline's executable specification: every behaviour here
(send everything before the token, request gaps up to the current token's
seq, aru lower/raise rules, two-round Safe stability) is the classic
protocol, unencumbered by acceleration bookkeeping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class RefMessage:
    """A data message in the reference protocol."""

    seq: int
    pid: int
    safe: bool
    payload: Any


@dataclass(frozen=True)
class RefToken:
    seq: int
    aru: int
    aru_id: Optional[int]
    fcc: int
    rtr: Tuple[int, ...]


class _RefParticipant:
    """Original-ring participant: multicast everything, then the token."""

    def __init__(self, pid: int, personal_window: int, global_window: int) -> None:
        self.pid = pid
        self.personal_window = personal_window
        self.global_window = global_window
        self.pending: Deque[Tuple[Any, bool]] = deque()
        self.buffer: Dict[int, RefMessage] = {}
        self.local_aru = 0
        self.delivered_upto = 0
        self.safe_bound = 0
        self.delivered: List[RefMessage] = []
        self._sent_last_round = 0
        self._aru_history: List[int] = []

    # -- token handling (original protocol order) -----------------------

    def on_token(self, token: RefToken) -> Tuple[List[RefMessage], RefToken]:
        sends: List[RefMessage] = []
        # Retransmissions first.
        remaining = []
        for seq in token.rtr:
            message = self.buffer.get(seq)
            if message is not None:
                sends.append(message)
            elif seq > self.delivered_upto or seq > self.safe_bound:
                remaining.append(seq)
        num_retrans = len(sends)
        # All new messages are multicast before the token is passed.
        budget = min(
            len(self.pending),
            self.personal_window,
            max(0, self.global_window - token.fcc - num_retrans),
        )
        seq = token.seq
        for _i in range(budget):
            payload, safe = self.pending.popleft()
            seq += 1
            message = RefMessage(seq, self.pid, safe, payload)
            self._store(message)
            sends.append(message)
        # Request every gap up to the received token's seq (all of those
        # messages were multicast before this token was sent).
        missing = [
            s for s in range(self.local_aru + 1, token.seq + 1)
            if s not in self.buffer and s > self.safe_bound
        ]
        # aru rules.
        if self.local_aru < token.aru:
            aru, aru_id = self.local_aru, self.pid
        elif token.aru_id == self.pid:
            aru = self.local_aru
            aru_id = self.pid if self.local_aru < seq else None
        elif token.aru_id is None and token.aru == token.seq:
            aru, aru_id = self.local_aru, None
        else:
            aru, aru_id = token.aru, token.aru_id
        fcc = token.fcc - self._sent_last_round + num_retrans + budget
        self._sent_last_round = num_retrans + budget
        out = RefToken(
            seq=seq,
            aru=aru,
            aru_id=aru_id,
            fcc=fcc,
            rtr=tuple(sorted(set(remaining) | set(missing))),
        )
        # Safe stability: min of the aru on our last two sent tokens.
        self._aru_history.append(aru)
        if len(self._aru_history) >= 2:
            bound = min(self._aru_history[-1], self._aru_history[-2])
            if bound > self.safe_bound:
                self.safe_bound = bound
        self._try_deliver()
        return sends, out

    def on_data(self, message: RefMessage) -> None:
        self._store(message)
        self._try_deliver()

    def _store(self, message: RefMessage) -> None:
        if message.seq in self.buffer or message.seq <= self.delivered_upto:
            return
        self.buffer[message.seq] = message
        while self.local_aru + 1 in self.buffer:
            self.local_aru += 1

    def _try_deliver(self) -> None:
        while True:
            message = self.buffer.get(self.delivered_upto + 1)
            if message is None:
                break
            if message.safe and message.seq > self.safe_bound:
                break
            self.delivered.append(message)
            self.delivered_upto = message.seq
        # Garbage-collect stable messages.
        floor = min(self.safe_bound, self.delivered_upto)
        for s in list(self.buffer):
            if s <= floor:
                del self.buffer[s]


class ReferenceRing:
    """Mini-driver running the reference protocol to quiescence.

    The network is instantaneous and per-link FIFO, like
    :class:`repro.harness.LoopbackRing`; messages sent before the token
    are processed before it, exactly as the original protocol assumes.
    ``drop_data(seq, dst)`` injects deterministic loss keyed on sequence
    number so the same pattern can be replayed against the core engine.
    """

    def __init__(
        self,
        pids: Sequence[int],
        personal_window: int = 40,
        global_window: int = 240,
        drop_data: Optional[Callable[[int, int], bool]] = None,
    ) -> None:
        if not pids:
            raise ValueError("need at least one participant")
        self.pids = list(pids)
        self.participants = {
            pid: _RefParticipant(pid, personal_window, global_window)
            for pid in self.pids
        }
        self._drop_data = drop_data
        self._inbox: Dict[int, Deque[RefMessage]] = {p: deque() for p in self.pids}
        self.rounds = 0

    def submit(self, pid: int, payload: Any, safe: bool = False) -> None:
        self.participants[pid].pending.append((payload, safe))

    def _quiesced(self) -> bool:
        return all(
            not p.pending and not self._inbox[pid]
            for pid, p in self.participants.items()
        )

    def run(self, extra_rounds: int = 3, max_rounds: int = 100_000) -> None:
        """Rotate the token until quiescent, plus aru/Safe cleanup rounds."""
        token = RefToken(seq=0, aru=0, aru_id=None, fcc=0, rtr=())
        idle = 0
        for _round in range(max_rounds):
            for pid in self.pids:
                participant = self.participants[pid]
                # Original protocol: all pending data processed first.
                inbox = self._inbox[pid]
                while inbox:
                    participant.on_data(inbox.popleft())
                sends, token = participant.on_token(token)
                for message in sends:
                    self._multicast(message, source=pid)
            self.rounds += 1
            if self._quiesced():
                idle += 1
                if idle > extra_rounds:
                    # Final data drain so late arrivals are processed.
                    for pid in self.pids:
                        inbox = self._inbox[pid]
                        while inbox:
                            self.participants[pid].on_data(inbox.popleft())
                    return
            else:
                idle = 0
        raise RuntimeError("reference ring did not quiesce in %d rounds" % max_rounds)

    def _multicast(self, message: RefMessage, source: int) -> None:
        for pid in self.pids:
            if pid == source:
                continue
            if self._drop_data is not None and self._drop_data(message.seq, pid):
                continue
            self._inbox[pid].append(message)

    def delivered_payloads(self, pid: int) -> List[Any]:
        return [m.payload for m in self.participants[pid].delivered]

    def delivered_seqs(self, pid: int) -> List[int]:
        return [m.seq for m in self.participants[pid].delivered]
