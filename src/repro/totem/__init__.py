"""The original Totem single-ring protocol — the paper's baseline.

Two forms live here:

* :class:`ReferenceRing` — an independent, self-contained transcription
  of the original protocol used as an executable specification for
  differential tests.
* :func:`original_config` — the production way to run the baseline: the
  core engine with ``accelerated_window = 0`` and the conservative
  priority method, which the paper states is identical to the original
  Ring protocol.
"""

from ..core import ProtocolConfig
from .reference import ReferenceRing, RefMessage, RefToken


def original_config(**overrides) -> ProtocolConfig:
    """The core engine configured as the original Ring protocol."""
    return ProtocolConfig.original_ring(**overrides)


__all__ = ["ReferenceRing", "RefMessage", "RefToken", "original_config"]
