"""Capture analyzer: render and summarize ``.rcap`` files.

One decoder serves both worlds (sim switch taps and the UDP transport
write the same record format), which makes sim-vs-emulation runs
directly diffable::

    python -m repro.cli decode bench_results/captures/sim_sample.rcap
    python -m repro.cli decode run.rcap --summary
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .capture import CaptureReader, MULTICAST
from .codec import DecodeError


def render_capture(
    path: str,
    limit: Optional[int] = None,
) -> Iterator[str]:
    """Yield human-readable lines for one capture file.

    The first line is a ``#`` header describing the capture; each record
    renders as ``timestamp  src->dst  port  bytes  message``.  Records
    that fail strict decoding are rendered, not fatal — the analyzer's
    job includes looking at corrupt captures.
    """
    reader = CaptureReader(path)
    label = " label=%r" % reader.label if reader.label else ""
    yield "# rcap world=%s%s file=%s" % (reader.world_name, label, path)
    shown = 0
    total = 0
    for record in reader:
        total += 1
        if limit is not None and shown >= limit:
            continue
        shown += 1
        dst = "mcast" if record.dst == MULTICAST else str(record.dst)
        try:
            decoded = record.decode()
            rendered = "%s %r" % (decoded.kind, decoded.message)
            if decoded.ring_id:
                rendered += "  [ring %d]" % decoded.ring_id
        except DecodeError as exc:
            rendered = "UNDECODABLE (%s)" % exc
        yield "%12.6f  %3s -> %-5s  %-5s  %5dB  %s" % (
            record.timestamp, record.src, dst,
            record.traffic_name, len(record.blob), rendered,
        )
    if limit is not None and total > shown:
        yield "# ... %d further record(s) suppressed by --limit" % (total - shown)
    if reader.truncated_tail:
        yield "# WARNING: capture ends mid-record (writer did not close cleanly)"


def summarize_capture(path: str) -> Dict[str, object]:
    """Aggregate statistics for one capture file."""
    from ..core.coalesce import header_bytes_saved
    from .codec import HEADER_SIZE

    reader = CaptureReader(path)
    by_kind: Dict[str, int] = {}
    bytes_by_kind: Dict[str, int] = {}
    undecodable = 0
    records = 0
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    wire_bytes = 0
    jumbo_datagrams = 0
    jumbo_packets = 0
    jumbo_saved = 0
    for record in reader:
        records += 1
        wire_bytes += len(record.blob)
        if first_ts is None:
            first_ts = record.timestamp
        last_ts = record.timestamp
        try:
            decoded = record.decode()
        except DecodeError:
            undecodable += 1
            continue
        by_kind[decoded.kind] = by_kind.get(decoded.kind, 0) + 1
        bytes_by_kind[decoded.kind] = (
            bytes_by_kind.get(decoded.kind, 0) + len(record.blob)
        )
        if decoded.kind == "jumbo":
            count = len(decoded.message.messages)
            jumbo_datagrams += 1
            jumbo_packets += count
            jumbo_saved += header_bytes_saved(count, HEADER_SIZE)
    return {
        "world": reader.world_name,
        "label": reader.label,
        "records": records,
        "wire_bytes": wire_bytes,
        "records_by_kind": dict(sorted(by_kind.items())),
        "bytes_by_kind": dict(sorted(bytes_by_kind.items())),
        "undecodable": undecodable,
        "span_s": (last_ts - first_ts) if records else 0.0,
        "truncated_tail": reader.truncated_tail,
        #: Coalescing statistics (all zero for captures without jumbos).
        "jumbo_datagrams": jumbo_datagrams,
        "jumbo_packets": jumbo_packets,
        "jumbo_header_bytes_saved": jumbo_saved,
    }


def render_summary(path: str) -> Iterator[str]:
    """Yield the summary of one capture as readable lines."""
    summary = summarize_capture(path)
    yield "# rcap world=%s records=%d wire_bytes=%d span=%.6fs" % (
        summary["world"], summary["records"],
        summary["wire_bytes"], summary["span_s"],
    )
    if summary["label"]:
        yield "# label: %s" % summary["label"]
    for kind, count in summary["records_by_kind"].items():
        yield "  %-18s %6d record(s)  %9d bytes" % (
            kind, count, summary["bytes_by_kind"][kind],
        )
    if summary["undecodable"]:
        yield "  %-18s %6d record(s)" % ("UNDECODABLE", summary["undecodable"])
    if summary["jumbo_datagrams"]:
        yield (
            "# coalescing: %d packet(s) in %d jumbo datagram(s) "
            "(%.2f per jumbo), %d header byte(s) saved" % (
                summary["jumbo_packets"], summary["jumbo_datagrams"],
                summary["jumbo_packets"] / summary["jumbo_datagrams"],
                summary["jumbo_header_bytes_saved"],
            )
        )
    if summary["truncated_tail"]:
        yield "# WARNING: capture ends mid-record"
