"""``repro.wire`` — the deterministic binary wire protocol.

Everything that travels between daemons in a real deployment has one
canonical byte encoding here (:mod:`.codec`), shared by the real-socket
emulation and by the capture taps on the simulated switch.  The format
is struct-packed, versioned, CRC-protected and pickle-free, so a
malformed or hostile datagram can be rejected without executing
anything.

* :mod:`.tags`    — the single registry of frame-type and TLV tag
  numbers (checked for uniqueness by ``repro.analysis``).
* :mod:`.codec`   — encode/decode for data messages, the token,
  membership control messages and the spreadlike client protocol.
* :mod:`.capture` — the ``.rcap`` packet-capture format plus taps for
  the simulated switch and the UDP transport.
* :mod:`.decode`  — the capture analyzer behind
  ``python -m repro.cli decode``.
* :mod:`.fuzz`    — deterministic datagram mutators for the
  malformed-frame fuzz suites.
"""

from .codec import (
    DATA_HEADER_SIZE,
    GOSSIP_BASE_SIZE,
    GOSSIP_REQ_BASE_SIZE,
    GOSSIP_UPDATE_SIZE,
    HEADER_SIZE,
    MAX_RTR_SEQ,
    WIRE_VERSION,
    Decoded,
    DecodeError,
    EncodeError,
    WireError,
    decode,
    decode_detail,
    encode,
    encode_jumbo,
    encoded_size,
)
from .capture import (
    CaptureReader,
    CaptureRecord,
    CaptureWriter,
    SimCaptureTap,
    TRAFFIC_DATA,
    TRAFFIC_TOKEN,
)

__all__ = [
    "DATA_HEADER_SIZE",
    "GOSSIP_BASE_SIZE",
    "GOSSIP_REQ_BASE_SIZE",
    "GOSSIP_UPDATE_SIZE",
    "HEADER_SIZE",
    "MAX_RTR_SEQ",
    "WIRE_VERSION",
    "Decoded",
    "DecodeError",
    "EncodeError",
    "WireError",
    "decode",
    "decode_detail",
    "encode",
    "encode_jumbo",
    "encoded_size",
    "CaptureReader",
    "CaptureRecord",
    "CaptureWriter",
    "SimCaptureTap",
    "TRAFFIC_DATA",
    "TRAFFIC_TOKEN",
]
