"""``.rcap`` packet captures: one record format for both worlds.

A capture is a flat binary file of wire frames plus per-frame metadata
(timestamp, source, destination, logical port).  The simulated switch
and the real-socket UDP transport write the *same* format, so one
decoder (:mod:`repro.wire.decode`) serves both and a sim run can be
diffed against an emulation run frame-for-frame.

File layout::

    offset  size  field
    0       4     magic b"RCAP"
    4       2     capture format version (currently 1)
    6       1     world: 0 = sim, 1 = emulation
    7       1     reserved (0)
    8       4     label length
    12      ...   UTF-8 label (free-form, e.g. the run's parameters)

followed by zero or more records::

    0       8     timestamp, seconds (f64; sim time or monotonic time)
    8       8     source id (i64; -1 = unknown)
    16      8     destination id (i64; -1 = multicast)
    24      1     traffic class: 0 = data port, 1 = token port
    25      1     reserved (0)
    26      2     reserved (0)
    28      4     frame length
    32      ...   the encoded wire frame (:mod:`repro.wire.codec`)

Records are appended in capture order; the file needs no index and
truncated tails (a crashed writer) are detected, reported, and do not
invalidate the records before them.
"""

from __future__ import annotations

import struct
import threading
from typing import Any, Iterator, NamedTuple, Optional

from . import codec
from .codec import DecodeError, EncodeError

RCAP_MAGIC = b"RCAP"
RCAP_VERSION = 1

WORLD_SIM = 0
WORLD_EMULATION = 1
WORLD_NAMES = {WORLD_SIM: "sim", WORLD_EMULATION: "emulation"}

TRAFFIC_DATA = 0
TRAFFIC_TOKEN = 1
TRAFFIC_NAMES = {TRAFFIC_DATA: "data", TRAFFIC_TOKEN: "token"}

_FILE_HEADER = struct.Struct("<4sHBBI")
_RECORD_HEADER = struct.Struct("<dqqBBHI")

#: Destination id meaning "multicast to every other port".
MULTICAST = -1


class CaptureError(ValueError):
    """The file is not a readable ``.rcap`` capture."""


class CaptureRecord(NamedTuple):
    """One captured frame, still encoded."""

    timestamp: float
    src: int
    dst: int  #: ``MULTICAST`` (-1) for multicast frames.
    traffic: int  #: ``TRAFFIC_DATA`` or ``TRAFFIC_TOKEN``.
    blob: bytes

    @property
    def traffic_name(self) -> str:
        return TRAFFIC_NAMES.get(self.traffic, "t%d" % self.traffic)

    def decode(self) -> codec.Decoded:
        """Decode the captured frame (raises DecodeError if corrupt)."""
        return codec.decode_detail(self.blob)


class CaptureWriter:
    """Append-only ``.rcap`` writer; safe to share across node threads."""

    def __init__(self, path: str, world: int, label: str = "") -> None:
        if world not in WORLD_NAMES:
            raise ValueError("unknown capture world %r" % (world,))
        self.path = path
        self.world = world
        self.label = label
        self.records_written = 0
        #: Frames the tap saw but could not encode (sim-internal payloads).
        self.records_skipped = 0
        self._lock = threading.Lock()
        raw_label = label.encode("utf-8")
        self._handle = open(path, "wb")
        self._handle.write(_FILE_HEADER.pack(
            RCAP_MAGIC, RCAP_VERSION, world, 0, len(raw_label)
        ))
        self._handle.write(raw_label)

    def write(
        self,
        timestamp: float,
        src: int,
        dst: Optional[int],
        traffic: int,
        blob: bytes,
    ) -> None:
        """Append one already-encoded frame."""
        record = _RECORD_HEADER.pack(
            timestamp,
            src if src is not None else -1,
            dst if dst is not None else MULTICAST,
            traffic, 0, 0,
            len(blob),
        ) + blob
        with self._lock:
            if self._handle.closed:
                return  # a late sender racing close(); drop silently
            self._handle.write(record)
            self.records_written += 1

    def write_message(
        self,
        timestamp: float,
        src: int,
        dst: Optional[int],
        traffic: int,
        message: Any,
        ring_id: int = 0,
    ) -> bool:
        """Encode and append one protocol message.

        Returns False (and counts the skip) when the payload has no wire
        encoding — capture must never take down the node it observes.
        """
        try:
            blob = codec.encode(message, ring_id=ring_id)
        except EncodeError:
            with self._lock:
                self.records_skipped += 1
            return False
        self.write(timestamp, src, dst, traffic, blob)
        return True

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class CaptureReader:
    """Sequential reader over an ``.rcap`` file."""

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            self._data = handle.read()
        if len(self._data) < _FILE_HEADER.size:
            raise CaptureError("file shorter than the rcap header")
        magic, version, world, _reserved, label_len = _FILE_HEADER.unpack_from(
            self._data
        )
        if magic != RCAP_MAGIC:
            raise CaptureError("bad rcap magic %r" % magic)
        if version != RCAP_VERSION:
            raise CaptureError("unsupported rcap version %d" % version)
        if world not in WORLD_NAMES:
            raise CaptureError("unknown capture world %d" % world)
        body_start = _FILE_HEADER.size + label_len
        if body_start > len(self._data):
            raise CaptureError("truncated rcap label")
        self.world = world
        self.world_name = WORLD_NAMES[world]
        try:
            self.label = self._data[_FILE_HEADER.size:body_start].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CaptureError("invalid rcap label: %s" % exc)
        self._body_start = body_start
        #: Set by iteration when the file ends mid-record (crashed writer).
        self.truncated_tail = False

    def __iter__(self) -> Iterator[CaptureRecord]:
        data = self._data
        pos = self._body_start
        size = len(data)
        while pos < size:
            if pos + _RECORD_HEADER.size > size:
                self.truncated_tail = True
                return
            (timestamp, src, dst, traffic, _r1, _r2,
             blob_len) = _RECORD_HEADER.unpack_from(data, pos)
            pos += _RECORD_HEADER.size
            if pos + blob_len > size:
                self.truncated_tail = True
                return
            yield CaptureRecord(
                timestamp, src, dst, traffic, data[pos:pos + blob_len]
            )
            pos += blob_len


# -- taps -------------------------------------------------------------------

class SimCaptureTap:
    """Switch-ingress tap for the simulator.

    Install with :meth:`repro.net.Switch.set_capture`; every frame that
    reaches the crossbar is encoded once (multicast frames appear once,
    as on the switch's ingress port, exactly like the emulation's
    send-side tap).  Sim-internal frame payloads without a wire
    representation (e.g. the EVS harness's control-tuple markers) are
    unwrapped when possible and otherwise counted as skips.
    """

    def __init__(self, sim, writer: CaptureWriter) -> None:
        self.sim = sim
        self.writer = writer

    def __call__(self, frame) -> None:
        from ..net.frames import Traffic  # local: avoid import cycle

        traffic = TRAFFIC_TOKEN if frame.traffic is Traffic.TOKEN else TRAFFIC_DATA
        payload = frame.payload
        ring_id = 0
        # The EVS sim node wraps payloads in marker tuples:
        # ("data", ring_id, message) / ("data", ring_id, token) on the
        # token port / ("ctrl", membership_message).
        if type(payload) is tuple:
            if len(payload) == 3 and payload[0] == "data":
                ring_id, payload = payload[1], payload[2]
            elif len(payload) == 2 and payload[0] == "ctrl":
                payload = payload[1]
        self.writer.write_message(
            self.sim.now, frame.src, frame.dst, traffic, payload,
            ring_id=ring_id if isinstance(ring_id, int) and ring_id >= 0 else 0,
        )
