"""Central registry of every wire tag number.

Three byte-spaces live here, and **only** here — the codec, the capture
and trace tooling, and the static wire-drift lint
(:mod:`repro.analysis.rules.wire_drift`) all import from this module
rather than repeating literals:

``TYPE_*``
    Frame message types: the third byte of the 12-byte frame header.
    One per top-level datagram kind (data, token, membership, jumbo,
    gossip).  :data:`TYPE_NAMES` is the display-name table the decode
    analyzer uses.

``VALUE_*``
    Value-codec tags: the leading byte of every TLV-encoded value
    inside a data payload, a commit token, or a recovery snapshot.

``OBJECT_TAG_*``
    Registered protocol dataclasses (spreadlike client/group traffic,
    packed payloads, the multi-ring RoundMarker).  These share the TLV
    tag byte-space with ``VALUE_*`` — a value decoder reading a tag
    byte cannot tell "primitive" from "object" except by number — so
    the two families must be *jointly* unique.  The lint enforces
    exactly that (namespace ``tlv``), plus uniqueness of ``TYPE_*``
    (namespace ``frame``).

Append-only within a wire version: removing or renumbering a tag is a
:data:`repro.wire.codec.WIRE_VERSION` bump.  Adding a tag means adding
it here (the lint rejects integer tag literals anywhere else under
``repro/wire/``) and extending the matching schema table in the codec.
"""

from __future__ import annotations

# -- frame message types (header byte 3) -- namespace: frame ----------------

TYPE_DATA = 1
TYPE_TOKEN = 2
TYPE_PROBE = 3
TYPE_JOIN = 4
TYPE_COMMIT_TOKEN = 5
TYPE_RECOVERY_DATA = 6
TYPE_RECOVERY_COMPLETE = 7
TYPE_JUMBO = 8
TYPE_GOSSIP_PING = 9
TYPE_GOSSIP_PING_REQ = 10
TYPE_GOSSIP_ACK = 11

TYPE_NAMES = {
    TYPE_DATA: "data",
    TYPE_TOKEN: "token",
    TYPE_PROBE: "probe",
    TYPE_JOIN: "join",
    TYPE_COMMIT_TOKEN: "commit-token",
    TYPE_RECOVERY_DATA: "recovery-data",
    TYPE_RECOVERY_COMPLETE: "recovery-complete",
    TYPE_JUMBO: "jumbo",
    TYPE_GOSSIP_PING: "gossip-ping",
    TYPE_GOSSIP_PING_REQ: "gossip-ping-req",
    TYPE_GOSSIP_ACK: "gossip-ack",
}

# -- value-codec primitive tags -- namespace: tlv ---------------------------

VALUE_NONE = 0x00
VALUE_TRUE = 0x01
VALUE_FALSE = 0x02
VALUE_INT64 = 0x03
VALUE_BIGINT = 0x04
VALUE_FLOAT = 0x05
VALUE_BYTES = 0x06
VALUE_STR = 0x07
VALUE_TUPLE = 0x08
VALUE_LIST = 0x09
VALUE_DICT = 0x0A
VALUE_FROZENSET = 0x0B
VALUE_SET = 0x0C
VALUE_SERVICE = 0x20
VALUE_DATA_MESSAGE = 0x21

# -- registered protocol object tags -- namespace: tlv (shared byte-space) --

OBJECT_TAG_CLIENT_ID = 0x30
OBJECT_TAG_GROUP_JOIN = 0x31
OBJECT_TAG_GROUP_LEAVE = 0x32
OBJECT_TAG_CLIENT_DISCONNECT = 0x33
OBJECT_TAG_PRIVATE_CAST = 0x34
OBJECT_TAG_GROUP_CAST = 0x35
OBJECT_TAG_GROUP_MESSAGE = 0x36
OBJECT_TAG_PRIVATE_MESSAGE = 0x37
OBJECT_TAG_MEMBERSHIP_NOTICE = 0x38
OBJECT_TAG_PACKED_ITEM = 0x39
OBJECT_TAG_PACKED_PAYLOAD = 0x3A
OBJECT_TAG_ROUND_MARKER = 0x3B
