"""Deterministic datagram mutators for the malformed-frame fuzz suites.

Everything here is seeded: the same ``random.Random`` produces the same
mutation sequence, so a fuzz failure is a repro, not an anecdote.  Used
by ``tests/test_wire_fuzz.py`` (hypothesis property suite plus the
live-daemon spray test) and by ``make wire-fuzz-smoke``.
"""

from __future__ import annotations

import random
import socket
from typing import Callable, Iterator, List, Sequence

from . import codec

Mutator = Callable[[bytes, random.Random], bytes]


def truncate(blob: bytes, rng: random.Random) -> bytes:
    """Cut the datagram anywhere, including to zero bytes."""
    if not blob:
        return blob
    return blob[: rng.randrange(len(blob))]


def bitflip(blob: bytes, rng: random.Random) -> bytes:
    """Flip one random bit."""
    if not blob:
        return blob
    index = rng.randrange(len(blob))
    out = bytearray(blob)
    out[index] ^= 1 << rng.randrange(8)
    return bytes(out)


def corrupt_span(blob: bytes, rng: random.Random) -> bytes:
    """Overwrite a random span with random bytes."""
    if not blob:
        return blob
    start = rng.randrange(len(blob))
    length = rng.randrange(1, min(16, len(blob) - start) + 1)
    out = bytearray(blob)
    out[start:start + length] = rng.randbytes(length)
    return bytes(out)


def extend(blob: bytes, rng: random.Random) -> bytes:
    """Append random trailing garbage (body length must catch it)."""
    return blob + rng.randbytes(rng.randrange(1, 32))


def garbage(blob: bytes, rng: random.Random) -> bytes:
    """Forget the input entirely: pure random bytes."""
    return rng.randbytes(rng.randrange(1, max(2, len(blob) or 64)))


MUTATORS: Sequence[Mutator] = (truncate, bitflip, corrupt_span, extend, garbage)


def mutations(
    blob: bytes,
    seed: int,
    count: int,
    mutators: Sequence[Mutator] = MUTATORS,
) -> Iterator[bytes]:
    """Yield ``count`` seeded mutations of one valid datagram.

    Mutations that happen to reproduce the original bytes are re-rolled
    (a fuzz corpus of valid frames tests nothing).
    """
    rng = random.Random(seed)
    produced = 0
    while produced < count:
        mutator = mutators[rng.randrange(len(mutators))]
        mutated = mutator(blob, rng)
        if mutated == blob:
            continue
        produced += 1
        yield mutated


def is_clean_failure(blob: bytes) -> bool:
    """True when strict decoding rejects ``blob`` with DecodeError only.

    Valid decodes also count as clean (a mutation may legitimately land
    on another well-formed frame, CRC included — astronomically rare but
    not impossible for single-byte corpora).  Any *other* exception is a
    decoder bug; the property suite asserts this never happens.
    """
    try:
        codec.decode(blob)
    except codec.DecodeError:
        return True
    except Exception:
        return False
    return True


def spray(
    host: str,
    ports: Sequence[int],
    blobs: Sequence[bytes],
    pace_every: int = 50,
    pace_s: float = 0.002,
) -> int:
    """Send each blob to round-robin ports; returns datagrams sent.

    The brief pacing keeps a burst of garbage from overflowing the
    receiver's kernel socket buffer, so drop counters stay exact and
    the live-daemon fuzz test can assert them byte-for-byte.
    """
    import time

    sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sent = 0
    try:
        for index, blob in enumerate(blobs):
            sender.sendto(blob, (host, ports[index % len(ports)]))
            sent += 1
            if pace_every and (index + 1) % pace_every == 0:
                time.sleep(pace_s)
    finally:
        sender.close()
    return sent


def corpus(seed: int, count: int) -> List[bytes]:
    """A deterministic mixed corpus of malformed datagrams.

    Mutations of a representative valid frame of every message type,
    plus pure-garbage datagrams; all strictly rejected by the decoder
    (verified here, so callers can count them as guaranteed drops).
    """
    from ..core.config import Service
    from ..core.messages import DataMessage, Token

    samples = [
        codec.encode(Token(ring_id=1, hop=9, seq=40, aru=38, aru_id=2,
                           fcc=3, rtr=(17, 21))),
        codec.encode(DataMessage(seq=5, pid=1, round=2,
                                 service=Service.AGREED,
                                 payload=b"fuzz-corpus-payload" * 8,
                                 payload_size=152, submitted_at=0.25)),
        codec.encode(DataMessage(seq=6, pid=0, round=2,
                                 service=Service.SAFE,
                                 payload=("tuple", 3, None))),
    ]
    rng = random.Random(seed)
    out: List[bytes] = []
    per_sample = max(1, count // (len(samples) + 1))
    for index, blob in enumerate(samples):
        for mutated in mutations(blob, seed + index, per_sample):
            if is_clean_failure(mutated) and _rejected(mutated):
                out.append(mutated)
    while len(out) < count:
        blob = rng.randbytes(rng.randrange(1, 256))
        if _rejected(blob):
            out.append(blob)
    return out[:count]


def _rejected(blob: bytes) -> bool:
    try:
        codec.decode(blob)
    except codec.DecodeError:
        return True
    return False
