"""Binary codec for every on-the-wire protocol object.

Frame layout (little-endian throughout, no implicit padding)::

    offset  size  field
    0       2     magic  b"AR"
    2       1     wire version (currently 1)
    3       1     message type
    4       4     body length (bytes following the header)
    8       4     CRC-32 of the body
    12      ...   body (per message type, below)

Decoding is strict: wrong magic, unknown version or type, a body length
that disagrees with the datagram, a CRC mismatch, or trailing bytes all
raise :class:`DecodeError` — nothing is ever executed from the wire,
unlike pickle.  Every message type round-trips exactly
(``decode(encode(m)) == m``).

The token body is laid out so that an empty-rtr token encodes to exactly
:data:`repro.core.messages.TOKEN_BASE_SIZE` (72) bytes and each
retransmission request adds :data:`~repro.core.messages.TOKEN_RTR_ENTRY_SIZE`
(4) bytes; a data message with a raw ``bytes`` payload carries exactly
:data:`DATA_HEADER_SIZE` (60) bytes of framing.  The size constants the
simulator trusts are therefore *measured* properties of this codec, and
``tests/test_wire_sizes.py`` fails if they ever drift apart.

Versioning rule: any change to a body layout bumps :data:`WIRE_VERSION`;
decoders reject versions they do not speak (there is exactly one version
on a ring at a time — the membership protocol already excludes mixed
software from a configuration).
"""

from __future__ import annotations

import math
import struct
import zlib
from typing import Any, Dict, NamedTuple, Tuple

from ..core.config import Service
from ..core.messages import (
    DataMessage,
    TOKEN_BASE_SIZE,
    TOKEN_RTR_ENTRY_SIZE,
    Token,
)
from ..core.coalesce import JumboDatagram
from ..core.packing import PackedItem, PackedPayload
from ..membership.gossip import (
    GossipAck,
    GossipPing,
    GossipPingReq,
    GossipUpdate,
)
from ..membership.messages import (
    CommitToken,
    JoinMessage,
    MemberInfo,
    ProbeMessage,
    RecoveryComplete,
    RecoveryData,
)
from ..multiring.messages import RoundMarker
from .tags import (
    OBJECT_TAG_CLIENT_DISCONNECT,
    OBJECT_TAG_CLIENT_ID,
    OBJECT_TAG_GROUP_CAST,
    OBJECT_TAG_GROUP_JOIN,
    OBJECT_TAG_GROUP_LEAVE,
    OBJECT_TAG_GROUP_MESSAGE,
    OBJECT_TAG_MEMBERSHIP_NOTICE,
    OBJECT_TAG_PACKED_ITEM,
    OBJECT_TAG_PACKED_PAYLOAD,
    OBJECT_TAG_PRIVATE_CAST,
    OBJECT_TAG_PRIVATE_MESSAGE,
    OBJECT_TAG_ROUND_MARKER,
    TYPE_COMMIT_TOKEN,
    TYPE_DATA,
    TYPE_GOSSIP_ACK,
    TYPE_GOSSIP_PING,
    TYPE_GOSSIP_PING_REQ,
    TYPE_JOIN,
    TYPE_JUMBO,
    TYPE_NAMES,
    TYPE_PROBE,
    TYPE_RECOVERY_COMPLETE,
    TYPE_RECOVERY_DATA,
    TYPE_TOKEN,
    VALUE_BIGINT,
    VALUE_BYTES,
    VALUE_DATA_MESSAGE,
    VALUE_DICT,
    VALUE_FALSE,
    VALUE_FLOAT,
    VALUE_FROZENSET,
    VALUE_INT64,
    VALUE_LIST,
    VALUE_NONE,
    VALUE_SERVICE,
    VALUE_SET,
    VALUE_STR,
    VALUE_TRUE,
    VALUE_TUPLE,
)
from ..spreadlike.protocol import (
    ClientDisconnect,
    ClientId,
    GroupCast,
    GroupJoin,
    GroupLeave,
    GroupMessage,
    MembershipNotice,
    PrivateCast,
    PrivateMessage,
)


class WireError(ValueError):
    """Base class for wire-format errors."""


class EncodeError(WireError):
    """The object cannot be represented in the wire format."""


class DecodeError(WireError):
    """The datagram is not a valid wire frame."""


MAGIC = b"AR"
WIRE_VERSION = 1

_HEADER = struct.Struct("<2sBBII")
#: Frame header size: magic, version, type, body length, CRC-32.
HEADER_SIZE = _HEADER.size  # 12

# -- message types -----------------------------------------------------------
# Tag numbers live in repro.wire.tags (the single registry the wire-drift
# lint checks for uniqueness); imported above and re-exported here so
# existing callers keep reading codec.TYPE_* / codec.TYPE_NAMES.

# -- fixed body layouts ------------------------------------------------------

# ring_id, hop, seq, aru, aru_id (-1 = None), fcc, backlog, flags, rtr count.
# ``backlog`` and ``flags`` are reserved (always 0 in version 1): Totem's
# token carries backlog fields this protocol does not use yet, and
# reserving them keeps the 72-byte base size the simulator has always
# charged for a token.
_TOKEN_BODY = struct.Struct("<QQQQqQIII")
_RTR_ENTRY = struct.Struct("<I")
#: Largest sequence number a token rtr entry can carry (u32).
MAX_RTR_SEQ = 0xFFFFFFFF

# ring_id, seq, pid, round, submitted_at, payload_size,
# service, flags, payload kind, reserved.
_DATA_BODY = struct.Struct("<QQQQdIBBBB")
#: Bytes of wire framing on a data message with a raw ``bytes`` payload
#: (frame header + fixed data body; the payload itself adds nothing).
DATA_HEADER_SIZE = HEADER_SIZE + _DATA_BODY.size  # 60

_DATA_FLAG_POST_TOKEN = 0x01
_DATA_FLAG_HAS_TIMESTAMP = 0x02

_PAYLOAD_NONE = 0
_PAYLOAD_RAW = 1
_PAYLOAD_VALUE = 2

# Per-packet framing inside a jumbo body: inner frame type, inner body
# length.  Inner packets share the outer datagram's header and CRC —
# that sharing is the whole point (repro.core.coalesce).
_JUMBO_ENTRY = struct.Struct("<BI")

_PROBE_BODY = struct.Struct("<QQ")            # sender, ring_id
# sender, incarnation, probe_id (ping/ack); ping-req adds a target.
# The piggybacked update list (u32 count + entries) follows the fixed part.
_GOSSIP_BODY = struct.Struct("<QQQ")
_GOSSIP_REQ_BODY = struct.Struct("<QQQQ")
_GOSSIP_UPDATE = struct.Struct("<QQB")        # pid, incarnation, status
#: Wire framing of a gossip ping/ack with no piggybacked updates
#: (header + fixed body + update count); each update adds
#: GOSSIP_UPDATE_SIZE bytes.  The sim charges these sizes for gossip
#: frames, and ``tests/test_wire_gossip.py`` fails if codec and
#: constant drift.
GOSSIP_BASE_SIZE = HEADER_SIZE + _GOSSIP_BODY.size + 4       # 40
GOSSIP_REQ_BASE_SIZE = HEADER_SIZE + _GOSSIP_REQ_BODY.size + 4  # 48
GOSSIP_UPDATE_SIZE = _GOSSIP_UPDATE.size        # 17
_GOSSIP_MAX_STATUS = 2
_JOIN_BODY = struct.Struct("<QQ")             # sender, ring_seq
_COMMIT_BODY = struct.Struct("<QIII")         # new_ring_id, rotation, members, collected
_MEMBER_INFO = struct.Struct("<Qqqqqq")       # pid, old_ring_id?, aru, high, safe, delivered
_RECOVERY_BODY = struct.Struct("<QQI")        # sender, old_ring_id, nested length
_RECOVERY_DONE_BODY = struct.Struct("<QQ")    # sender, new_ring_id

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_U64_MAX = 0xFFFFFFFFFFFFFFFF
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

#: Bound on value-codec nesting, so a crafted datagram cannot drive the
#: decoder into a RecursionError (which would escape DecodeError).
_MAX_DEPTH = 64

# -- value codec tags --------------------------------------------------------
# TLV tag numbers also live in repro.wire.tags; primitive VALUE_* and
# OBJECT_TAG_* share one byte-space, so the registry keeps them jointly
# unique.  The private _V_* aliases preserve the codec's internal idiom.

_V_NONE = VALUE_NONE
_V_TRUE = VALUE_TRUE
_V_FALSE = VALUE_FALSE
_V_INT64 = VALUE_INT64
_V_BIGINT = VALUE_BIGINT
_V_FLOAT = VALUE_FLOAT
_V_BYTES = VALUE_BYTES
_V_STR = VALUE_STR
_V_TUPLE = VALUE_TUPLE
_V_LIST = VALUE_LIST
_V_DICT = VALUE_DICT
_V_FROZENSET = VALUE_FROZENSET
_V_SET = VALUE_SET
_V_SERVICE = VALUE_SERVICE
_V_DATA_MESSAGE = VALUE_DATA_MESSAGE

#: Registered protocol dataclasses: tag -> (class, field names).  The
#: field list is the wire schema — append-only within a wire version.
_OBJECT_SCHEMAS: Dict[int, Tuple[type, Tuple[str, ...]]] = {
    OBJECT_TAG_CLIENT_ID: (ClientId, ("daemon", "name")),
    OBJECT_TAG_GROUP_JOIN: (GroupJoin, ("group", "client")),
    OBJECT_TAG_GROUP_LEAVE: (GroupLeave, ("group", "client")),
    OBJECT_TAG_CLIENT_DISCONNECT: (ClientDisconnect, ("client",)),
    OBJECT_TAG_PRIVATE_CAST: (PrivateCast, ("dst", "sender", "payload")),
    OBJECT_TAG_GROUP_CAST: (GroupCast, ("groups", "sender", "payload")),
    OBJECT_TAG_GROUP_MESSAGE: (
        GroupMessage, ("groups", "sender", "payload", "service", "seq")
    ),
    OBJECT_TAG_PRIVATE_MESSAGE: (
        PrivateMessage, ("sender", "payload", "service", "seq")
    ),
    OBJECT_TAG_MEMBERSHIP_NOTICE: (
        MembershipNotice, ("group", "members", "joined", "left", "seq")
    ),
    OBJECT_TAG_PACKED_ITEM: (
        PackedItem, ("payload", "payload_size", "submitted_at")
    ),
    OBJECT_TAG_PACKED_PAYLOAD: (PackedPayload, ("items",)),
    OBJECT_TAG_ROUND_MARKER: (RoundMarker, ("ring_index", "round")),
}
_OBJECT_TAGS = {cls: tag for tag, (cls, _) in _OBJECT_SCHEMAS.items()}

_SERVICE_CODES = {
    Service.FIFO: 0,
    Service.CAUSAL: 1,
    Service.AGREED: 2,
    Service.SAFE: 3,
}
_SERVICE_BY_CODE = {code: service for service, code in _SERVICE_CODES.items()}


# -- encoding ---------------------------------------------------------------

def _u32(value: int, what: str) -> bytes:
    if not 0 <= value <= 0xFFFFFFFF:
        raise EncodeError("%s %r does not fit in u32" % (what, value))
    return _U32.pack(value)


def _check_u64(value: int, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise EncodeError("%s %r is not an int" % (what, value))
    if not 0 <= value <= _U64_MAX:
        raise EncodeError("%s %r does not fit in u64" % (what, value))
    return value


def _check_i64(value: int, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise EncodeError("%s %r is not an int" % (what, value))
    if not _I64_MIN <= value <= _I64_MAX:
        raise EncodeError("%s %r does not fit in i64" % (what, value))
    return value


def _encode_str(text: str) -> bytes:
    if not isinstance(text, str):
        raise EncodeError("expected str, got %r" % (text,))
    try:
        raw = text.encode("utf-8")
    except UnicodeEncodeError as exc:
        raise EncodeError("string not UTF-8 encodable: %s" % exc) from exc
    return _u32(len(raw), "string length") + raw


def _encode_value(value: Any, out: bytearray, depth: int = 0) -> None:
    """Append the tagged encoding of one Python value.

    Supports the closed set of types protocol payloads are made of:
    scalars, bytes/str, tuple/list/dict/set/frozenset, and the
    registered protocol dataclasses.  Anything else is an
    :class:`EncodeError` — the wire format has no escape hatch into
    arbitrary object serialization.
    """
    if depth > _MAX_DEPTH:
        raise EncodeError("payload nesting exceeds %d levels" % _MAX_DEPTH)
    if value is None:
        out.append(_V_NONE)
    elif value is True:
        out.append(_V_TRUE)
    elif value is False:
        out.append(_V_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_V_INT64)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
            out.append(_V_BIGINT)
            out += _u32(len(raw), "bigint length")
            out += raw
    elif type(value) is float:
        out.append(_V_FLOAT)
        out += _F64.pack(value)
    elif type(value) is bytes:
        out.append(_V_BYTES)
        out += _u32(len(value), "bytes length")
        out += value
    elif type(value) is str:
        out.append(_V_STR)
        out += _encode_str(value)
    elif type(value) is tuple or type(value) is list:
        out.append(_V_TUPLE if type(value) is tuple else _V_LIST)
        out += _u32(len(value), "sequence length")
        for item in value:
            _encode_value(item, out, depth + 1)
    elif type(value) is dict:
        out.append(_V_DICT)
        out += _u32(len(value), "dict length")
        for key, item in value.items():
            _encode_value(key, out, depth + 1)
            _encode_value(item, out, depth + 1)
    elif type(value) is frozenset or type(value) is set:
        # Sets have no iteration order; sort the encoded items so equal
        # sets always produce identical bytes (determinism contract).
        out.append(_V_FROZENSET if type(value) is frozenset else _V_SET)
        out += _u32(len(value), "set length")
        encoded = []
        for item in value:
            chunk = bytearray()
            _encode_value(item, chunk, depth + 1)
            encoded.append(bytes(chunk))
        for chunk in sorted(encoded):
            out += chunk
    elif type(value) is Service:
        out.append(_V_SERVICE)
        out.append(_SERVICE_CODES[value])
    elif type(value) is DataMessage:
        blob = encode(value)
        out.append(_V_DATA_MESSAGE)
        out += _u32(len(blob), "nested frame length")
        out += blob
    else:
        tag = _OBJECT_TAGS.get(type(value))
        if tag is None:
            raise EncodeError(
                "no wire encoding for %s (payloads must be built from "
                "scalars, containers and protocol types)"
                % type(value).__name__
            )
        _, fields = _OBJECT_SCHEMAS[tag]
        out.append(tag)
        for name in fields:
            _encode_value(getattr(value, name), out, depth + 1)


def _encode_data_body(message: DataMessage, ring_id: int) -> bytes:
    payload = message.payload
    if payload is None:
        kind, tail = _PAYLOAD_NONE, b""
    elif type(payload) is bytes:
        kind, tail = _PAYLOAD_RAW, payload
    else:
        chunk = bytearray()
        _encode_value(payload, chunk)
        kind, tail = _PAYLOAD_VALUE, bytes(chunk)
    flags = 0
    if message.sent_after_token:
        flags |= _DATA_FLAG_POST_TOKEN
    submitted_at = message.submitted_at
    if submitted_at is None:
        stamp = 0.0
    else:
        flags |= _DATA_FLAG_HAS_TIMESTAMP
        stamp = float(submitted_at)
    service_code = _SERVICE_CODES.get(message.service)
    if service_code is None:
        raise EncodeError("unknown service %r" % (message.service,))
    payload_size = message.payload_size
    if not isinstance(payload_size, int) or not 0 <= payload_size <= 0xFFFFFFFF:
        raise EncodeError(
            "payload_size %r does not fit in u32" % (payload_size,)
        )
    fixed = _DATA_BODY.pack(
        _check_u64(ring_id, "ring_id"),
        _check_u64(message.seq, "seq"),
        _check_u64(message.pid, "pid"),
        _check_u64(message.round, "round"),
        stamp,
        payload_size,
        service_code,
        flags,
        kind,
        0,
    )
    return fixed + tail


def _encode_token_body(token: Token) -> bytes:
    aru_id = token.aru_id
    if aru_id is None:
        aru_field = -1
    else:
        aru_field = _check_i64(aru_id, "aru_id")
        if aru_field < 0:
            raise EncodeError("aru_id %r must be non-negative" % (aru_id,))
    parts = [
        _TOKEN_BODY.pack(
            _check_u64(token.ring_id, "ring_id"),
            _check_u64(token.hop, "hop"),
            _check_u64(token.seq, "seq"),
            _check_u64(token.aru, "aru"),
            aru_field,
            _check_u64(token.fcc, "fcc"),
            0,  # backlog (reserved)
            0,  # flags (reserved)
            len(token.rtr),
        )
    ]
    for seq in token.rtr:
        if not isinstance(seq, int) or not 0 <= seq <= MAX_RTR_SEQ:
            raise EncodeError(
                "rtr entry %r does not fit in u32" % (seq,)
            )
        parts.append(_RTR_ENTRY.pack(seq))
    return b"".join(parts)


def _encode_pid_set(pids, what: str) -> bytes:
    ordered = sorted(pids)
    parts = [_u32(len(ordered), what)]
    for pid in ordered:
        parts.append(_U64.pack(_check_u64(pid, "%s entry" % what)))
    return b"".join(parts)


def _encode_member_info(info: MemberInfo) -> bytes:
    fixed = _MEMBER_INFO.pack(
        _check_u64(info.pid, "pid"),
        _check_i64(info.old_ring_id, "old_ring_id"),
        _check_i64(info.old_aru, "old_aru"),
        _check_i64(info.high_seq, "high_seq"),
        _check_i64(info.old_safe_bound, "old_safe_bound"),
        _check_i64(info.old_delivered_upto, "old_delivered_upto"),
    )
    members = _u32(len(info.old_members), "old_members") + b"".join(
        _U64.pack(_check_u64(pid, "old_members entry"))
        for pid in info.old_members
    )
    return fixed + members


def _encode_gossip_updates(updates) -> bytes:
    parts = [_u32(len(updates), "gossip update count")]
    for update in updates:
        if type(update) is not GossipUpdate:
            raise EncodeError(
                "gossip updates must be GossipUpdate, got %s"
                % type(update).__name__
            )
        status = update.status
        if not isinstance(status, int) or not 0 <= status <= _GOSSIP_MAX_STATUS:
            raise EncodeError("gossip status %r out of range" % (status,))
        parts.append(_GOSSIP_UPDATE.pack(
            _check_u64(update.pid, "gossip pid"),
            _check_u64(update.incarnation, "gossip incarnation"),
            status,
        ))
    return b"".join(parts)


def _frame(msg_type: int, body: bytes) -> bytes:
    return _HEADER.pack(
        MAGIC, WIRE_VERSION, msg_type, len(body), zlib.crc32(body) & 0xFFFFFFFF
    ) + body


def encode(message: Any, ring_id: int = 0) -> bytes:
    """Encode one top-level wire message to a datagram.

    ``ring_id`` stamps data messages with the sender's configuration id
    (the core :class:`DataMessage` does not carry one; on a real network
    Totem data packets do, so stale-ring traffic can be discarded).
    """
    kind = type(message)
    if kind is DataMessage:
        return _frame(TYPE_DATA, _encode_data_body(message, ring_id))
    if kind is Token:
        return _frame(TYPE_TOKEN, _encode_token_body(message))
    if kind is ProbeMessage:
        return _frame(TYPE_PROBE, _PROBE_BODY.pack(
            _check_u64(message.sender, "sender"),
            _check_u64(message.ring_id, "ring_id"),
        ))
    if kind is JoinMessage:
        body = _JOIN_BODY.pack(
            _check_u64(message.sender, "sender"),
            _check_u64(message.ring_seq, "ring_seq"),
        ) + _encode_pid_set(message.proc_set, "proc_set") \
          + _encode_pid_set(message.fail_set, "fail_set")
        return _frame(TYPE_JOIN, body)
    if kind is CommitToken:
        rotation = message.rotation
        if not isinstance(rotation, int) or not 0 <= rotation <= 0xFFFFFFFF:
            raise EncodeError("rotation %r does not fit in u32" % (rotation,))
        parts = [_COMMIT_BODY.pack(
            _check_u64(message.new_ring_id, "new_ring_id"),
            rotation,
            len(message.members),
            len(message.collected),
        )]
        for pid in message.members:
            parts.append(_U64.pack(_check_u64(pid, "members entry")))
        for info in message.collected:
            parts.append(_encode_member_info(info))
        return _frame(TYPE_COMMIT_TOKEN, b"".join(parts))
    if kind is RecoveryData:
        nested = encode(message.message, ring_id=_check_u64(
            message.old_ring_id, "old_ring_id"))
        body = _RECOVERY_BODY.pack(
            _check_u64(message.sender, "sender"),
            message.old_ring_id,
            len(nested),
        ) + nested
        return _frame(TYPE_RECOVERY_DATA, body)
    if kind is RecoveryComplete:
        return _frame(TYPE_RECOVERY_COMPLETE, _RECOVERY_DONE_BODY.pack(
            _check_u64(message.sender, "sender"),
            _check_u64(message.new_ring_id, "new_ring_id"),
        ))
    if kind is JumboDatagram:
        return _frame(TYPE_JUMBO, _encode_jumbo_body(message.messages, ring_id))
    if kind is GossipPing or kind is GossipAck:
        body = _GOSSIP_BODY.pack(
            _check_u64(message.sender, "sender"),
            _check_u64(message.incarnation, "incarnation"),
            _check_u64(message.probe_id, "probe_id"),
        ) + _encode_gossip_updates(message.updates)
        return _frame(
            TYPE_GOSSIP_PING if kind is GossipPing else TYPE_GOSSIP_ACK, body
        )
    if kind is GossipPingReq:
        body = _GOSSIP_REQ_BODY.pack(
            _check_u64(message.sender, "sender"),
            _check_u64(message.incarnation, "incarnation"),
            _check_u64(message.target, "target"),
            _check_u64(message.probe_id, "probe_id"),
        ) + _encode_gossip_updates(message.updates)
        return _frame(TYPE_GOSSIP_PING_REQ, body)
    raise EncodeError(
        "no top-level wire encoding for %s" % kind.__name__
    )


def _encode_jumbo_body(messages, ring_id: int) -> bytes:
    if not messages:
        raise EncodeError("a jumbo datagram needs at least one packet")
    parts = [_u32(len(messages), "jumbo packet count")]
    for message in messages:
        # Only data packets coalesce: the token is never jumbo-framed
        # (it flushes the batch and departs alone, for latency), and
        # control-plane traffic is too rare to be worth amortizing.
        if type(message) is not DataMessage:
            raise EncodeError(
                "jumbo datagrams carry only data packets, got %s"
                % type(message).__name__
            )
        body = _encode_data_body(message, ring_id)
        parts.append(_JUMBO_ENTRY.pack(TYPE_DATA, len(body)))
        parts.append(body)
    return b"".join(parts)


def encode_jumbo(messages, ring_id: int = 0) -> bytes:
    """Encode several data packets as one jumbo datagram.

    The inner packets share one frame header and one CRC; each costs
    only :data:`repro.core.coalesce.JUMBO_ENTRY_BYTES` of framing.
    ``decode`` returns the whole datagram as a
    :class:`~repro.core.coalesce.JumboDatagram`.
    """
    return _frame(TYPE_JUMBO, _encode_jumbo_body(tuple(messages), ring_id))


def encoded_size(message: Any, ring_id: int = 0) -> int:
    """Exact datagram size of ``message`` on the wire, in bytes."""
    return len(encode(message, ring_id))


# -- decoding ---------------------------------------------------------------

class _Reader:
    """Bounds-checked cursor over one datagram body.

    Zero-copy by construction: the buffer is kept as handed in (bytes,
    bytearray or memoryview) and every fixed-layout field is read with
    ``struct.unpack_from`` at an offset.  :meth:`take` slices only the
    requested field — for a memoryview input that slice is itself a view
    (no bytes are copied until a decoder materializes them on purpose).
    """

    __slots__ = ("blob", "pos", "end")

    def __init__(self, blob, pos: int, end: int) -> None:
        self.blob = blob
        self.pos = pos
        self.end = end

    def take(self, count: int):
        pos = self.pos
        if count < 0 or pos + count > self.end:
            raise DecodeError("truncated frame body")
        self.pos = pos + count
        return self.blob[pos:pos + count]

    def unpack(self, fmt: struct.Struct):
        pos = self.pos
        if pos + fmt.size > self.end:
            raise DecodeError("truncated frame body")
        self.pos = pos + fmt.size
        return fmt.unpack_from(self.blob, pos)

    def remaining(self) -> int:
        return self.end - self.pos

    def done(self) -> None:
        if self.pos != self.end:
            raise DecodeError(
                "%d trailing bytes after message body" % (self.end - self.pos)
            )


def _decode_value(reader: _Reader, depth: int = 0) -> Any:
    if depth > _MAX_DEPTH:
        raise DecodeError("payload nesting exceeds %d levels" % _MAX_DEPTH)
    (tag,) = reader.unpack(_U8)
    if tag == _V_NONE:
        return None
    if tag == _V_TRUE:
        return True
    if tag == _V_FALSE:
        return False
    if tag == _V_INT64:
        return reader.unpack(_I64)[0]
    if tag == _V_BIGINT:
        (length,) = reader.unpack(_U32)
        return int.from_bytes(reader.take(length), "big", signed=True)
    if tag == _V_FLOAT:
        return reader.unpack(_F64)[0]
    if tag == _V_BYTES:
        (length,) = reader.unpack(_U32)
        value = reader.take(length)
        # Materialize only this field (a no-op when the buffer is bytes:
        # slicing bytes already produced bytes).
        return value if type(value) is bytes else bytes(value)
    if tag == _V_STR:
        (length,) = reader.unpack(_U32)
        return _decode_str_bytes(reader.take(length))
    if tag in (_V_TUPLE, _V_LIST):
        (count,) = reader.unpack(_U32)
        _check_count(count, reader, 1)
        items = [_decode_value(reader, depth + 1) for _ in range(count)]
        return tuple(items) if tag == _V_TUPLE else items
    if tag == _V_DICT:
        (count,) = reader.unpack(_U32)
        _check_count(count, reader, 2)
        result = {}
        for _ in range(count):
            key = _decode_value(reader, depth + 1)
            try:
                result[key] = _decode_value(reader, depth + 1)
            except TypeError as exc:  # unhashable key
                raise DecodeError("unhashable dict key on wire: %s" % exc)
        return result
    if tag in (_V_FROZENSET, _V_SET):
        (count,) = reader.unpack(_U32)
        _check_count(count, reader, 1)
        try:
            items = {_decode_value(reader, depth + 1) for _ in range(count)}
        except TypeError as exc:
            raise DecodeError("unhashable set item on wire: %s" % exc)
        return frozenset(items) if tag == _V_FROZENSET else items
    if tag == _V_SERVICE:
        (code,) = reader.unpack(_U8)
        service = _SERVICE_BY_CODE.get(code)
        if service is None:
            raise DecodeError("unknown service code %d" % code)
        return service
    if tag == _V_DATA_MESSAGE:
        (length,) = reader.unpack(_U32)
        return decode(reader.take(length))
    schema = _OBJECT_SCHEMAS.get(tag)
    if schema is not None:
        cls, fields = schema
        values = [_decode_value(reader, depth + 1) for _ in fields]
        try:
            return cls(*values)
        except (TypeError, ValueError) as exc:
            raise DecodeError(
                "invalid %s fields on wire: %s" % (cls.__name__, exc)
            )
    raise DecodeError("unknown value tag 0x%02x" % tag)


def _decode_str_bytes(raw) -> str:
    # ``str(buffer, encoding)`` decodes bytes, bytearray and memoryview
    # alike without an intermediate bytes copy.
    try:
        return str(raw, "utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError("invalid UTF-8 on wire: %s" % exc)


def _check_count(count: int, reader: _Reader, min_item_bytes: int) -> None:
    """Reject counts that could not possibly fit in the remaining body.

    Each encoded item is at least one tag byte, so a count larger than
    the bytes left is a lie — failing early keeps a crafted 16-byte
    datagram from asking the decoder to build a billion-element list.
    """
    if count * min_item_bytes > reader.remaining():
        raise DecodeError(
            "count %d exceeds remaining body (%d bytes)"
            % (count, reader.remaining())
        )


class Decoded(NamedTuple):
    """One decoded frame plus its envelope metadata."""

    kind: str
    message: Any
    ring_id: int


def _decode_data_fixed(blob, pos: int, end: int):
    """Unpack the fixed data body at ``pos``; returns the raw field tuple.

    Shared by the eager decoder and the lazy :class:`FrameView` peek:
    validation of the fixed fields happens here, payload decoding does
    not.
    """
    if pos + _DATA_BODY.size > end:
        raise DecodeError("truncated frame body")
    fields = _DATA_BODY.unpack_from(blob, pos)
    (ring_id, seq, pid, round_, stamp, payload_size,
     service_code, flags, payload_kind, _reserved) = fields
    service = _SERVICE_BY_CODE.get(service_code)
    if service is None:
        raise DecodeError("unknown service code %d" % service_code)
    if flags & ~(_DATA_FLAG_POST_TOKEN | _DATA_FLAG_HAS_TIMESTAMP):
        raise DecodeError("unknown data flags 0x%02x" % flags)
    submitted_at = stamp if flags & _DATA_FLAG_HAS_TIMESTAMP else None
    if submitted_at is not None and math.isnan(submitted_at):
        raise DecodeError("NaN submission timestamp")
    return (ring_id, seq, pid, round_, service, payload_size,
            flags, payload_kind, submitted_at)


def _decode_data_payload(blob, pos: int, end: int, payload_kind: int):
    """Decode the (possibly TLV) payload region of a data body."""
    if payload_kind == _PAYLOAD_NONE:
        if pos != end:
            raise DecodeError("payload bytes on a payload-less data message")
        return None
    if payload_kind == _PAYLOAD_RAW:
        # The single necessary copy: the payload becomes an independent
        # bytes object (a plain slice when the buffer is already bytes).
        payload = blob[pos:end]
        return payload if type(payload) is bytes else bytes(payload)
    if payload_kind == _PAYLOAD_VALUE:
        reader = _Reader(blob, pos, end)
        payload = _decode_value(reader)
        reader.done()
        return payload
    raise DecodeError("unknown payload kind %d" % payload_kind)


def _decode_data_body(blob, pos: int, end: int) -> Tuple[DataMessage, int]:
    (ring_id, seq, pid, round_, service, payload_size,
     flags, payload_kind, submitted_at) = _decode_data_fixed(blob, pos, end)
    payload = _decode_data_payload(
        blob, pos + _DATA_BODY.size, end, payload_kind
    )
    # Positional construction: this is the decode hot path and the
    # keyword form measurably slows it down.
    message = DataMessage(
        seq, pid, round_, service, payload, payload_size,
        bool(flags & _DATA_FLAG_POST_TOKEN), submitted_at,
    )
    return message, ring_id


#: Bulk rtr formats, one per entry count (tokens carry few requests, so
#: this tiny cache covers every real token with a single unpack_from).
_RTR_BULK: Dict[int, struct.Struct] = {}


def _decode_token_body(blob, pos: int, end: int) -> Token:
    if pos + _TOKEN_BODY.size > end:
        raise DecodeError("truncated frame body")
    (ring_id, hop, seq, aru, aru_field, fcc,
     backlog, flags, rtr_count) = _TOKEN_BODY.unpack_from(blob, pos)
    pos += _TOKEN_BODY.size
    if backlog or flags:
        raise DecodeError("reserved token fields are non-zero")
    if aru_field < -1:
        raise DecodeError("invalid aru_id %d" % aru_field)
    if rtr_count * _RTR_ENTRY.size != end - pos:
        raise DecodeError(
            "rtr count %d disagrees with body length" % rtr_count
        )
    if not rtr_count:
        rtr = ()
    elif rtr_count <= 64:
        bulk = _RTR_BULK.get(rtr_count)
        if bulk is None:
            bulk = _RTR_BULK[rtr_count] = struct.Struct("<%dI" % rtr_count)
        rtr = bulk.unpack_from(blob, pos)
    else:
        # Unusually long request lists: don't let a crafted datagram grow
        # the Struct cache without bound.
        unpack_from = _RTR_ENTRY.unpack_from
        size = _RTR_ENTRY.size
        rtr = tuple(
            unpack_from(blob, pos + i * size)[0] for i in range(rtr_count)
        )
    # Positional construction (decode hot path): field order is
    # ring_id, hop, seq, aru, aru_id, fcc, rtr.
    return Token(
        ring_id, hop, seq, aru,
        None if aru_field == -1 else aru_field,
        fcc, rtr,
    )


def _decode_pid_set(reader: _Reader) -> frozenset:
    (count,) = reader.unpack(_U32)
    _check_count(count, reader, _U64.size)
    return frozenset(reader.unpack(_U64)[0] for _ in range(count))


def _decode_member_info(reader: _Reader) -> MemberInfo:
    (pid, old_ring_id, old_aru, high_seq,
     old_safe_bound, old_delivered_upto) = reader.unpack(_MEMBER_INFO)
    (count,) = reader.unpack(_U32)
    _check_count(count, reader, _U64.size)
    old_members = tuple(reader.unpack(_U64)[0] for _ in range(count))
    return MemberInfo(
        pid=pid,
        old_ring_id=old_ring_id,
        old_aru=old_aru,
        high_seq=high_seq,
        old_members=old_members,
        old_safe_bound=old_safe_bound,
        old_delivered_upto=old_delivered_upto,
    )


def _check_frame(blob) -> int:
    """Validate magic, version, length and CRC; returns the message type.

    Zero-copy on every path, including errors: the input buffer (bytes,
    bytearray or memoryview) is never materialized with ``bytes()`` and
    the CRC is computed over a memoryview slice of the body, not a copy.
    """
    blob_len = len(blob)
    if blob_len < HEADER_SIZE:
        raise DecodeError(
            "datagram of %d bytes is shorter than the %d-byte header"
            % (blob_len, HEADER_SIZE)
        )
    magic, version, msg_type, body_len, crc = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise DecodeError("bad magic %r" % magic)
    if version != WIRE_VERSION:
        raise DecodeError(
            "unsupported wire version %d (this build speaks %d)"
            % (version, WIRE_VERSION)
        )
    if HEADER_SIZE + body_len != blob_len:
        raise DecodeError(
            "body length %d disagrees with datagram size %d"
            % (body_len, blob_len)
        )
    if zlib.crc32(memoryview(blob)[HEADER_SIZE:]) & 0xFFFFFFFF != crc:
        raise DecodeError("CRC mismatch")
    return msg_type


#: Complement of the known data flags, for one-test validation.
_DATA_FLAGS_UNKNOWN = ~(_DATA_FLAG_POST_TOKEN | _DATA_FLAG_HAS_TIMESTAMP)

# Pre-bound hot-path callables and offsets: every datagram pays these
# lookups, so resolve them once at import instead of per decode.
_CRC32 = zlib.crc32
_HEADER_UNPACK = _HEADER.unpack_from
_DATA_BODY_UNPACK = _DATA_BODY.unpack_from
_DATA_PAYLOAD_OFFSET = HEADER_SIZE + _DATA_BODY.size


def decode(blob) -> Any:
    """Strictly decode one datagram to its protocol message.

    Accepts ``bytes``, ``bytearray`` or ``memoryview`` without copying
    the input (only the message payload is materialized).  Raises
    :class:`DecodeError` on anything that is not a well-formed frame of
    the current wire version.

    The data and token branches intentionally inline the frame check and
    body decode (rather than calling :func:`_check_frame` and
    :func:`_decode_data_body`): this is the per-datagram hot path and
    the Python call overhead of the layered helpers is measurable at
    wire rate.  The helpers remain the single source of truth for the
    lazy :class:`FrameView` and :func:`decode_detail` paths; keep the
    two in sync.
    """
    # The unpack itself is the type/length guard: struct.error means the
    # buffer is shorter than the header, TypeError means it is not a
    # byte buffer at all.  Checking by attempting saves an isinstance
    # and a length compare on every well-formed datagram.
    try:
        magic, version, msg_type, body_len, crc = _HEADER_UNPACK(blob)
    except struct.error:
        raise DecodeError(
            "datagram of %d bytes is shorter than the %d-byte header"
            % (len(blob), HEADER_SIZE)
        )
    except TypeError:
        raise DecodeError("expected bytes, got %r" % type(blob).__name__)
    end = len(blob)
    if magic != MAGIC:
        raise DecodeError("bad magic %r" % magic)
    if version != WIRE_VERSION:
        raise DecodeError(
            "unsupported wire version %d (this build speaks %d)"
            % (version, WIRE_VERSION)
        )
    if HEADER_SIZE + body_len != end:
        raise DecodeError(
            "body length %d disagrees with datagram size %d"
            % (body_len, end)
        )
    if _CRC32(memoryview(blob)[HEADER_SIZE:]) & 0xFFFFFFFF != crc:
        raise DecodeError("CRC mismatch")
    if msg_type == TYPE_DATA:
        pos = _DATA_PAYLOAD_OFFSET
        if pos > end:
            raise DecodeError("truncated frame body")
        (ring_id, seq, pid, round_, stamp, payload_size,
         service_code, flags, payload_kind,
         _reserved) = _DATA_BODY_UNPACK(blob, HEADER_SIZE)
        try:
            service = _SERVICE_BY_CODE[service_code]
        except KeyError:
            raise DecodeError("unknown service code %d" % service_code)
        if flags & _DATA_FLAGS_UNKNOWN:
            raise DecodeError("unknown data flags 0x%02x" % flags)
        if flags & _DATA_FLAG_HAS_TIMESTAMP:
            if stamp != stamp:  # NaN without a math.isnan call
                raise DecodeError("NaN submission timestamp")
            submitted_at = stamp
        else:
            submitted_at = None
        if payload_kind == _PAYLOAD_RAW:
            # The single necessary copy: the payload becomes an
            # independent bytes object (a plain slice for bytes input).
            payload = blob[pos:end]
            if type(payload) is not bytes:
                payload = bytes(payload)
        elif payload_kind == _PAYLOAD_NONE:
            if pos != end:
                raise DecodeError("payload bytes on a payload-less data message")
            payload = None
        elif payload_kind == _PAYLOAD_VALUE:
            reader = _Reader(blob, pos, end)
            payload = _decode_value(reader)
            reader.done()
        else:
            raise DecodeError("unknown payload kind %d" % payload_kind)
        # Direct slot stores instead of the dataclass __init__: measurably
        # faster on the per-datagram path.  DataMessage has no
        # __post_init__ and exactly these eight fields; keep in sync with
        # repro.core.messages.
        message = DataMessage.__new__(DataMessage)
        message.seq = seq
        message.pid = pid
        message.round = round_
        message.service = service
        message.payload = payload
        message.payload_size = payload_size
        message.sent_after_token = flags & _DATA_FLAG_POST_TOKEN != 0
        message.submitted_at = submitted_at
        return message
    if msg_type == TYPE_TOKEN:
        return _decode_token_body(blob, HEADER_SIZE, end)
    if msg_type == TYPE_JUMBO:
        return _decode_jumbo_body(blob, HEADER_SIZE, end)[0]
    return _decode_control(blob, msg_type, end)[0]


def _decode_jumbo_body(blob, pos: int, end: int) -> Tuple[JumboDatagram, int]:
    """Decode a jumbo body to (JumboDatagram, first packet's ring_id)."""
    if pos + _U32.size > end:
        raise DecodeError("truncated frame body")
    (count,) = _U32.unpack_from(blob, pos)
    pos += _U32.size
    if count == 0:
        raise DecodeError("empty jumbo datagram")
    entry_size = _JUMBO_ENTRY.size
    if count > (end - pos) // entry_size:
        raise DecodeError(
            "jumbo packet count %d exceeds datagram capacity" % count
        )
    messages = []
    ring_id = 0
    for index in range(count):
        if end - pos < entry_size:
            raise DecodeError("jumbo entry overruns the datagram")
        inner_type, body_len = _JUMBO_ENTRY.unpack_from(blob, pos)
        if inner_type != TYPE_DATA:
            raise DecodeError(
                "jumbo datagrams carry only data packets, got type %d"
                % inner_type
            )
        pos += entry_size
        inner_end = pos + body_len
        if inner_end > end:
            raise DecodeError("jumbo entry overruns the datagram")
        message, inner_ring = _decode_data_body(blob, pos, inner_end)
        if index == 0:
            ring_id = inner_ring
        messages.append(message)
        pos = inner_end
    if pos != end:
        raise DecodeError("trailing bytes after jumbo entries")
    return JumboDatagram(tuple(messages)), ring_id


def _decode_control(blob, msg_type: int, end: int) -> Tuple[Any, int]:
    """Decode the rare control-plane frame types; returns (message, ring_id)."""
    reader = _Reader(blob, HEADER_SIZE, end)
    ring_id = 0
    if msg_type == TYPE_PROBE:
        sender, probe_ring = reader.unpack(_PROBE_BODY)
        message = ProbeMessage(sender=sender, ring_id=probe_ring)
        ring_id = probe_ring
    elif msg_type == TYPE_JOIN:
        sender, ring_seq = reader.unpack(_JOIN_BODY)
        proc_set = _decode_pid_set(reader)
        fail_set = _decode_pid_set(reader)
        message = JoinMessage(
            sender=sender, proc_set=proc_set,
            fail_set=fail_set, ring_seq=ring_seq,
        )
    elif msg_type == TYPE_COMMIT_TOKEN:
        new_ring_id, rotation, n_members, n_collected = reader.unpack(_COMMIT_BODY)
        _check_count(n_members, reader, _U64.size)
        members = tuple(reader.unpack(_U64)[0] for _ in range(n_members))
        _check_count(n_collected, reader, _MEMBER_INFO.size + _U32.size)
        collected = tuple(_decode_member_info(reader) for _ in range(n_collected))
        message = CommitToken(
            new_ring_id=new_ring_id, members=members,
            rotation=rotation, collected=collected,
        )
        ring_id = new_ring_id
    elif msg_type == TYPE_RECOVERY_DATA:
        sender, old_ring_id, nested_len = reader.unpack(_RECOVERY_BODY)
        nested = decode(reader.take(nested_len))
        if type(nested) is not DataMessage:
            raise DecodeError("recovery-data frame carries a non-data message")
        message = RecoveryData(
            sender=sender, old_ring_id=old_ring_id, message=nested,
        )
        ring_id = old_ring_id
    elif msg_type == TYPE_RECOVERY_COMPLETE:
        sender, new_ring_id = reader.unpack(_RECOVERY_DONE_BODY)
        message = RecoveryComplete(sender=sender, new_ring_id=new_ring_id)
        ring_id = new_ring_id
    elif msg_type in (TYPE_GOSSIP_PING, TYPE_GOSSIP_ACK):
        sender, incarnation, probe_id = reader.unpack(_GOSSIP_BODY)
        updates = _decode_gossip_updates(reader)
        cls = GossipPing if msg_type == TYPE_GOSSIP_PING else GossipAck
        message = cls(
            sender=sender, incarnation=incarnation,
            probe_id=probe_id, updates=updates,
        )
    elif msg_type == TYPE_GOSSIP_PING_REQ:
        sender, incarnation, target, probe_id = reader.unpack(_GOSSIP_REQ_BODY)
        updates = _decode_gossip_updates(reader)
        message = GossipPingReq(
            sender=sender, incarnation=incarnation, target=target,
            probe_id=probe_id, updates=updates,
        )
    else:
        raise DecodeError("unknown message type %d" % msg_type)
    reader.done()
    return message, ring_id


def _decode_gossip_updates(reader: _Reader) -> Tuple[GossipUpdate, ...]:
    (count,) = reader.unpack(_U32)
    _check_count(count, reader, _GOSSIP_UPDATE.size)
    updates = []
    for _ in range(count):
        pid, incarnation, status = reader.unpack(_GOSSIP_UPDATE)
        if status > _GOSSIP_MAX_STATUS:
            raise DecodeError("unknown gossip status %d" % status)
        updates.append(GossipUpdate(pid, incarnation, status))
    return tuple(updates)


def decode_detail(blob) -> Decoded:
    """Strictly decode one datagram, keeping envelope metadata.

    Accepts ``bytes``, ``bytearray`` or ``memoryview`` without copying
    the input (only message payload bytes are materialized).  Raises
    :class:`DecodeError` on anything that is not a well-formed frame of
    the current wire version.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise DecodeError("expected bytes, got %r" % type(blob).__name__)
    msg_type = _check_frame(blob)
    end = len(blob)
    if msg_type == TYPE_DATA:
        message, ring_id = _decode_data_body(blob, HEADER_SIZE, end)
    elif msg_type == TYPE_TOKEN:
        message = _decode_token_body(blob, HEADER_SIZE, end)
        ring_id = message.ring_id
    elif msg_type == TYPE_JUMBO:
        message, ring_id = _decode_jumbo_body(blob, HEADER_SIZE, end)
    else:
        message, ring_id = _decode_control(blob, msg_type, end)
    return Decoded(TYPE_NAMES[msg_type], message, ring_id)


class FrameView:
    """Lazy view of one validated data/token frame.

    ``decode_frame`` validates the envelope and unpacks the fixed body
    fields eagerly — enough for routing, filtering and statistics — but
    defers TLV/payload decoding until :attr:`message` is first read.
    Header-only consumers (capture summaries, per-type counters,
    ring-id demultiplexers) therefore never pay for payload decoding.

    Only ``data`` and ``token`` frames support the lazy split; control
    frames (probe/join/commit/recovery) are rare and decode eagerly.
    """

    __slots__ = ("kind", "ring_id", "_blob", "_type", "_fixed", "_message")

    def __init__(self, blob, msg_type: int, ring_id: int, fixed):
        self.kind = TYPE_NAMES[msg_type]
        self.ring_id = ring_id
        self._blob = blob
        self._type = msg_type
        self._fixed = fixed
        self._message = None

    # -- header-only accessors (no payload decode) ----------------------
    @property
    def seq(self) -> int:
        # Data fixed tuple: (ring_id, seq, ...); token: (ring_id, hop, seq, ...)
        return self._fixed[1 if self._type == TYPE_DATA else 2]

    @property
    def pid(self) -> int:
        """Sender pid for data frames; ``None`` for tokens."""
        return self._fixed[2] if self._type == TYPE_DATA else None

    @property
    def payload_size(self) -> int:
        """Declared payload size for data frames; 0 for tokens."""
        return self._fixed[5] if self._type == TYPE_DATA else 0

    # -- full decode, on demand ----------------------------------------
    @property
    def message(self) -> Any:
        """The decoded protocol message (payload decoded on first access)."""
        message = self._message
        if message is None:
            blob = self._blob
            if self._type == TYPE_DATA:
                (_, seq, pid, round_, service, payload_size,
                 flags, payload_kind, submitted_at) = self._fixed
                payload = _decode_data_payload(
                    blob, HEADER_SIZE + _DATA_BODY.size, len(blob), payload_kind
                )
                message = DataMessage(
                    seq, pid, round_, service, payload, payload_size,
                    bool(flags & _DATA_FLAG_POST_TOKEN), submitted_at,
                )
            else:
                message = _decode_token_body(blob, HEADER_SIZE, len(blob))
            self._message = message
            self._blob = None  # release the buffer once fully decoded
        return message


def decode_frame(blob) -> Any:
    """Decode one datagram lazily where possible.

    Returns a :class:`FrameView` for data and token frames — envelope
    and fixed fields validated, payload decoding deferred — and a plain
    :class:`Decoded` for the rare control-plane frame types.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise DecodeError("expected bytes, got %r" % type(blob).__name__)
    msg_type = _check_frame(blob)
    if msg_type == TYPE_DATA:
        fixed = _decode_data_fixed(blob, HEADER_SIZE, len(blob))
        return FrameView(blob, msg_type, fixed[0], fixed)
    if msg_type == TYPE_TOKEN:
        if HEADER_SIZE + _TOKEN_BODY.size > len(blob):
            raise DecodeError("truncated frame body")
        fixed = _TOKEN_BODY.unpack_from(blob, HEADER_SIZE)
        return FrameView(blob, msg_type, fixed[0], fixed)
    if msg_type == TYPE_JUMBO:
        message, ring_id = _decode_jumbo_body(blob, HEADER_SIZE, len(blob))
    else:
        message, ring_id = _decode_control(blob, msg_type, len(blob))
    return Decoded(TYPE_NAMES[msg_type], message, ring_id)
