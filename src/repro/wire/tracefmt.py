"""``.rtrace`` lifecycle traces: one record format for sim and wire.

A trace is a flat binary file of fixed-size lifecycle records — one per
(message, stage, node) event stamped by
:class:`repro.obs.lifecycle.LifecycleTracer`.  Like ``.rcap`` captures
(:mod:`repro.wire.capture`), the simulated cluster and the UDP
emulation write the *same* format, so one analyzer
(``python -m repro.cli trace-analyze``) serves both.

File layout::

    offset  size  field
    0       4     magic b"RTRC"
    4       2     trace format version (currently 1)
    6       1     world: 0 = sim, 1 = emulation
    7       1     clock: 0 = sim time, 1 = wall (monotonic) time
    8       4     label length
    12      ...   UTF-8 label (free-form, e.g. the run's parameters)

followed by zero or more fixed-size 26-byte records::

    0       8     timestamp, seconds (f64; sim or monotonic per header)
    8       1     stage id (repro.obs.lifecycle.STAGE_*)
    9       1     reserved (0)
    10      4     observing node pid (i32; -1 = unknown)
    14      4     originating node pid (i32; -1 = n/a, e.g. tokens)
    18      4     message sequence number (u32; round id for token stages)
    22      4     aux (u32; stage-specific flags/payload, see lifecycle.py)

Records are appended in stamp order; truncated tails (a crashed writer)
are detected, reported, and do not invalidate records before them.

A JSONL flavor (one ``{"t", "stage", "node", "origin", "seq", "aux"}``
object per line) exists for eyeballing and interop; ``load_trace``
sniffs which flavor a path holds.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator, List, NamedTuple, Optional, TextIO

RTRACE_MAGIC = b"RTRC"
RTRACE_VERSION = 1

TRACE_WORLD_SIM = 0
TRACE_WORLD_EMULATION = 1
TRACE_WORLD_NAMES = {TRACE_WORLD_SIM: "sim", TRACE_WORLD_EMULATION: "emulation"}

CLOCK_SIM = 0
CLOCK_WALL = 1
CLOCK_NAMES = {CLOCK_SIM: "sim", CLOCK_WALL: "wall"}

_FILE_HEADER = struct.Struct("<4sHBBI")
_RECORD = struct.Struct("<dBBiiII")

#: Public alias: the fixed record codec.  The lifecycle tracer packs
#: stamps with it directly into a bytearray — packed bytes are invisible
#: to the cyclic GC, where an equivalent tuple-per-stamp store makes
#: full collections scan the whole trace and dominates tracing cost.
RECORD_STRUCT = _RECORD
RECORD_SIZE = _RECORD.size

#: pid placeholder for "not applicable" (token records have no origin).
NO_PID = -1

_U32_MASK = 0xFFFFFFFF


class TraceFormatError(ValueError):
    """The file is not a readable ``.rtrace`` trace."""


class TraceRecord(NamedTuple):
    """One lifecycle stamp."""

    t: float
    stage: int
    node: int  #: pid of the node observing the stage (-1 = unknown).
    origin: int  #: pid that originated the message (-1 = n/a).
    seq: int  #: message sequence number, or round id for token stages.
    aux: int  #: stage-specific flags (see :mod:`repro.obs.lifecycle`).


class TraceWriter:
    """Append-only ``.rtrace`` writer."""

    def __init__(
        self, path: str, world: int, clock: int, label: str = ""
    ) -> None:
        if world not in TRACE_WORLD_NAMES:
            raise ValueError("unknown trace world %r" % (world,))
        if clock not in CLOCK_NAMES:
            raise ValueError("unknown trace clock %r" % (clock,))
        self.path = path
        self.world = world
        self.clock = clock
        self.label = label
        self.records_written = 0
        raw_label = label.encode("utf-8")
        self._handle = open(path, "wb")
        self._handle.write(_FILE_HEADER.pack(
            RTRACE_MAGIC, RTRACE_VERSION, world, clock, len(raw_label)
        ))
        self._handle.write(raw_label)

    def write(
        self, t: float, stage: int, node: int, origin: int, seq: int, aux: int
    ) -> None:
        self._handle.write(_RECORD.pack(
            t, stage, 0, node, origin, seq & _U32_MASK, aux & _U32_MASK
        ))
        self.records_written += 1

    def write_record(self, record: TraceRecord) -> None:
        self.write(
            record.t, record.stage, record.node,
            record.origin, record.seq, record.aux,
        )

    def write_packed(self, data: bytes) -> None:
        """Append records already packed with :data:`RECORD_STRUCT`."""
        if len(data) % RECORD_SIZE:
            raise ValueError(
                "packed trace data is %d bytes, not a multiple of the "
                "%d-byte record" % (len(data), RECORD_SIZE)
            )
        self._handle.write(data)
        self.records_written += len(data) // RECORD_SIZE

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class TraceReader:
    """Sequential reader over an ``.rtrace`` file."""

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            self._data = handle.read()
        if len(self._data) < _FILE_HEADER.size:
            raise TraceFormatError("file shorter than the rtrace header")
        magic, version, world, clock, label_len = _FILE_HEADER.unpack_from(
            self._data
        )
        if magic != RTRACE_MAGIC:
            raise TraceFormatError("bad rtrace magic %r" % magic)
        if version != RTRACE_VERSION:
            raise TraceFormatError("unsupported rtrace version %d" % version)
        if world not in TRACE_WORLD_NAMES:
            raise TraceFormatError("unknown trace world %d" % world)
        if clock not in CLOCK_NAMES:
            raise TraceFormatError("unknown trace clock %d" % clock)
        body_start = _FILE_HEADER.size + label_len
        if body_start > len(self._data):
            raise TraceFormatError("truncated rtrace label")
        self.world = world
        self.world_name = TRACE_WORLD_NAMES[world]
        self.clock = clock
        self.clock_name = CLOCK_NAMES[clock]
        try:
            self.label = self._data[_FILE_HEADER.size:body_start].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise TraceFormatError("invalid rtrace label: %s" % exc)
        self._body_start = body_start
        #: Set by iteration when the file ends mid-record (crashed writer).
        self.truncated_tail = False

    def __iter__(self) -> Iterator[TraceRecord]:
        data = self._data
        pos = self._body_start
        size = len(data)
        record_size = _RECORD.size
        unpack_from = _RECORD.unpack_from
        while pos < size:
            if pos + record_size > size:
                self.truncated_tail = True
                return
            t, stage, _reserved, node, origin, seq, aux = unpack_from(data, pos)
            yield TraceRecord(t, stage, node, origin, seq, aux)
            pos += record_size


# -- JSONL flavor ------------------------------------------------------------

def write_jsonl(
    handle: TextIO, records, world: int, clock: int, label: str = ""
) -> int:
    """Write records as JSONL with a leading header object; returns count."""
    handle.write(json.dumps({
        "rtrace": RTRACE_VERSION,
        "world": TRACE_WORLD_NAMES[world],
        "clock": CLOCK_NAMES[clock],
        "label": label,
    }, sort_keys=True))
    handle.write("\n")
    count = 0
    for record in records:
        handle.write(json.dumps({
            "t": record.t,
            "stage": record.stage,
            "node": record.node,
            "origin": record.origin,
            "seq": record.seq,
            "aux": record.aux,
        }, sort_keys=True))
        handle.write("\n")
        count += 1
    return count


def read_jsonl(path: str) -> "LoadedTrace":
    with open(path, "r") as handle:
        first = handle.readline()
        try:
            header = json.loads(first)
        except ValueError as exc:
            raise TraceFormatError("not a JSONL trace: %s" % exc)
        if not isinstance(header, dict) or "rtrace" not in header:
            raise TraceFormatError("JSONL trace missing rtrace header line")
        if header["rtrace"] != RTRACE_VERSION:
            raise TraceFormatError(
                "unsupported rtrace version %r" % header["rtrace"]
            )
        records = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            records.append(TraceRecord(
                float(obj["t"]), int(obj["stage"]), int(obj["node"]),
                int(obj["origin"]), int(obj["seq"]), int(obj["aux"]),
            ))
    return LoadedTrace(
        world_name=str(header.get("world", "sim")),
        clock_name=str(header.get("clock", "sim")),
        label=str(header.get("label", "")),
        records=records,
        truncated_tail=False,
    )


class LoadedTrace(NamedTuple):
    """A fully-loaded trace, flavor-independent."""

    world_name: str
    clock_name: str
    label: str
    records: List[TraceRecord]
    truncated_tail: bool


def load_trace(path: str) -> LoadedTrace:
    """Load a trace from either flavor (binary sniffed by magic)."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
    if magic == RTRACE_MAGIC:
        reader = TraceReader(path)
        records = list(reader)
        return LoadedTrace(
            world_name=reader.world_name,
            clock_name=reader.clock_name,
            label=reader.label,
            records=records,
            truncated_tail=reader.truncated_tail,
        )
    return read_jsonl(path)
