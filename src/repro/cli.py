"""Command-line entry points.

Run a figure sweep without pytest::

    python -m repro.cli fig1            # print the figure table
    python -m repro.cli fig7 --full     # denser sweep
    python -m repro.cli list            # available experiments

Run a fault-injection campaign (seeded, deterministic)::

    python -m repro.cli campaign --seed 1 --scenarios 50
    python -m repro.cli campaign --seed 1 --scenarios 2 --selftest-violation

Run gossip-membership churn campaigns at 50-100 nodes::

    python -m repro.cli churn --nodes 50,100 --seed 1
    python -m repro.cli churn --sweep     # convergence-vs-N bench record

Run the multi-ring sharding scaling sweep (guarded bench record)::

    python -m repro.cli multiring                 # M in {1,2,4,8}
    python -m repro.cli multiring --ms 1,2        # CI smoke
    python -m repro.cli report --multiring        # merge-layer metrics

Inspect wire captures (``.rcap`` files from the sim switch tap or the
UDP transport)::

    python -m repro.cli decode bench_results/captures/sim_sample.rcap
    python -m repro.cli decode run.rcap --summary --limit 20
    python -m repro.cli capture-sample --out-dir bench_results/captures

Observability (``repro.obs``): unified metrics snapshots and causal
lifecycle traces (``.rtrace``)::

    python -m repro.cli report                  # seeded run -> metrics table
    python -m repro.cli report --json           # same, JSON snapshot
    python -m repro.cli trace-analyze run.rtrace
    python -m repro.cli obs-sample --out-dir bench_results/obs
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .bench import ALL_FIGURES, make_fig4, make_fig6, persist_figure, run_sweep


def _available() -> List[str]:
    return sorted(list(ALL_FIGURES) + ["fig4", "fig6"])


def run_figure_by_id(
    figure_id: str,
    verbose: bool = True,
    processes: Optional[int] = None,
) -> List[str]:
    """Run one figure's sweep(s); returns the markdown blocks."""
    progress = (lambda line: print("  " + line, file=sys.stderr)) if verbose else None
    if figure_id in ("fig4", "fig6"):
        specs = make_fig4() if figure_id == "fig4" else make_fig6()
        blocks = []
        for spec in specs:
            figure = run_sweep(spec, progress=progress, processes=processes)
            persist_figure(figure)
            blocks.append(figure.to_markdown())
        return blocks
    if figure_id not in ALL_FIGURES:
        raise SystemExit(
            "unknown experiment %r; available: %s"
            % (figure_id, ", ".join(_available()))
        )
    figure = run_sweep(
        ALL_FIGURES[figure_id](), progress=progress, processes=processes
    )
    persist_figure(figure)
    return [figure.to_markdown()]


def run_campaign_command(args) -> int:
    """The ``campaign`` experiment: seeded fault-injection sweep."""
    from .sim.campaign import (
        CampaignOptions,
        corrupt_first_log,
        run_campaign,
    )

    options = CampaignOptions(
        seed=args.seed,
        scenarios=args.scenarios,
        n_nodes=args.nodes,
        out_dir=args.out_dir,
        corrupt_logs=corrupt_first_log if args.selftest_violation else None,
    )
    progress = None if args.quiet else (
        lambda line: print("  " + line, file=sys.stderr)
    )
    summary = run_campaign(options, progress=progress)
    print("campaign seed=%d: %d scenario(s) x windows %s, %d failure(s)"
          % (summary["seed"], summary["scenarios"],
             summary["windows"], summary["failures"]))
    print("summary: %s" % summary["summary_path"])
    for scenario in summary["results"]:
        for run in scenario["runs"]:
            if run["repro"]:
                print("repro:   %s" % run["repro"])
    return 1 if summary["failures"] else 0


def run_churn_command(argv: List[str]) -> int:
    """The ``churn`` experiment: gossip-membership churn campaigns.

    Default mode runs EVS-checked endurance scenarios (sustained
    crash/restart churn plus one flapping node) at each requested
    cluster size; ``--sweep`` instead measures view-change convergence
    and control traffic vs N for both detection paths and writes the
    guarded ``churn_convergence.json`` record.
    """
    from .sim.churn import (
        DEFAULT_RECORD_PATH,
        ChurnOptions,
        convergence_sweep,
        run_churn_scenario,
        write_record,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli churn",
        description="Churn campaigns for the gossip membership detector.",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="campaign seed; victim order and schedules derive from it "
             "(default: 1)",
    )
    parser.add_argument(
        "--nodes", default="50,100",
        help="comma-separated cluster sizes for scenario runs "
             "(default: 50,100)",
    )
    parser.add_argument(
        "--events", type=int, default=8,
        help="churn events (crash+restart cycles) per scenario "
             "(default: 8)",
    )
    parser.add_argument(
        "--joins", type=int, default=0, metavar="K",
        help="spawn K brand-new pids mid-scenario (open-membership "
             "joins; gossip path only, default: 0)",
    )
    parser.add_argument(
        "--probes", action="store_true",
        help="run scenarios on the probe-flood detection path instead "
             "of gossip",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="run the convergence-vs-N sweep (both detection paths) "
             "and write the bench record instead of scenario runs",
    )
    parser.add_argument(
        "--out", default=DEFAULT_RECORD_PATH,
        help="record path for --sweep (default: %s)" % DEFAULT_RECORD_PATH,
    )
    args = parser.parse_args(argv)

    if args.sweep:
        record = convergence_sweep(seed=args.seed)
        path = write_record(record, args.out)
        for entry in record["sweep"]:
            print("n=%3d  gossip: crash %.3fs rejoin %.3fs steady "
                  "%.0f recv/node/s | probes: crash %.3fs steady "
                  "%.0f recv/node/s"
                  % (entry["n_nodes"],
                     entry["gossip"]["crash_convergence_s"],
                     entry["gossip"]["rejoin_convergence_s"],
                     entry["gossip"]["steady"]["recv_per_node_hz"],
                     entry["probes"]["crash_convergence_s"],
                     entry["probes"]["steady"]["recv_per_node_hz"]))
        print("metrics: %r" % record["metrics"])
        print("wrote %s" % path)
        return 0

    failures = 0
    for field in args.nodes.split(","):
        n_nodes = int(field)
        options = ChurnOptions(
            seed=args.seed, n_nodes=n_nodes, gossip=not args.probes,
            churn_events=args.events, joins=args.joins,
        )
        summary = run_churn_scenario(options)
        ok = summary["converged"] and not summary["violations"]
        failures += 0 if ok else 1
        print("churn n=%d seed=%d %s: %d restart(s), %d join(s), "
              "%d delivered, %d violation(s), ctrl %.0f frames/node/s"
              % (n_nodes, args.seed,
                 "gossip" if not args.probes else "probes",
                 summary["total_restarts"], len(summary["joined_pids"]),
                 summary["delivered_total"],
                 len(summary["violations"]),
                 summary["ctrl"]["ctrl_frames_per_node_per_s"]))
        for violation in summary["violations"][:5]:
            print("  violation: %s" % (violation,))
        if not summary["converged"]:
            print("  ERROR: membership failed to re-converge after churn")
    return 1 if failures else 0


def run_multiring_command(argv: List[str]) -> int:
    """The ``multiring`` experiment: sharded-ring scaling sweep.

    Runs the fixed per-ring workload at each requested ring count M,
    checks every point with both ordering oracles (per-ring EVS and the
    cross-ring merge checker), prints the scaling table, and writes the
    guarded ``multiring_scaling.json`` record.  Exits non-zero if any
    point reports an ordering violation.
    """
    from .multiring.bench import (
        DEFAULT_MS,
        DEFAULT_RECORD_PATH,
        scaling_sweep,
        total_violations,
        write_record,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli multiring",
        description="Multi-ring sharding scaling sweep with cross-ring "
                    "merge checking.",
    )
    parser.add_argument(
        "--ms", default=",".join(str(m) for m in DEFAULT_MS),
        help="comma-separated ring counts to sweep (default: %s)"
             % ",".join(str(m) for m in DEFAULT_MS),
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="workload seed; group placement, injection jitter and the "
             "merged order all derive from it (default: 1)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_RECORD_PATH,
        help="record path (default: %s)" % DEFAULT_RECORD_PATH,
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress",
    )
    args = parser.parse_args(argv)

    ms = [int(field) for field in args.ms.split(",")]
    progress = None if args.quiet else (
        lambda line: print("  " + line, file=sys.stderr)
    )
    record = scaling_sweep(ms=ms, seed=args.seed, progress=progress)
    path = write_record(record, args.out)
    for entry in record["sweep"]:
        print("M=%d  %8.0f msgs/s  %7.1f Mbps  p50 %6.1f us  rounds %4d  "
              "skips %3d  lag %d  violations %d"
              % (entry["m"], entry["aggregate_msgs_per_s"],
                 entry["aggregate_mbps"], entry["group_latency_p50_us"],
                 entry["rounds_merged"], entry["skips_filled"],
                 entry["max_ring_lag_rounds"],
                 entry["evs_violations"] + entry["cross_ring_violations"]))
    if record["metrics"]:
        print("metrics: %r" % record["metrics"])
    print("wrote %s" % path)
    violations = total_violations(record)
    if violations:
        print("ERROR: %d ordering violation(s) across the sweep"
              % violations, file=sys.stderr)
    return 1 if violations else 0


def run_decode_command(argv: List[str]) -> int:
    """The ``decode`` tool: render or summarize one ``.rcap`` capture."""
    from .wire.decode import render_capture, render_summary

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli decode",
        description="Decode a .rcap wire capture (sim or emulation).",
    )
    parser.add_argument("capture", help="path to the .rcap file")
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show at most N records (default: all)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="print aggregate counts instead of per-record lines",
    )
    args = parser.parse_args(argv)
    lines = (
        render_summary(args.capture) if args.summary
        else render_capture(args.capture, limit=args.limit)
    )
    for line in lines:
        print(line)
    return 0


def run_capture_sample_command(argv: List[str]) -> int:
    """Produce one small sim capture and one emulation capture.

    These are the committed reference samples: the same decoder renders
    both, proving the two worlds share one wire format.
    """
    import time

    from .core import ProtocolConfig, Service
    from .emulation import EmulatedRing
    from .net import GIGABIT
    from .sim import LIBRARY
    from .sim.cluster import SimCluster
    from .wire.capture import WORLD_EMULATION, WORLD_SIM, CaptureWriter

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli capture-sample",
        description="Generate the reference sim/emulation .rcap samples.",
    )
    parser.add_argument(
        "--out-dir", default=os.path.join("bench_results", "captures"),
        help="directory for sim_sample.rcap and emu_sample.rcap",
    )
    parser.add_argument(
        "--duration", type=float, default=0.01,
        help="simulated seconds for the sim sample (default: 0.01)",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)

    sim_path = os.path.join(args.out_dir, "sim_sample.rcap")
    config = ProtocolConfig.accelerated(personal_window=4, accelerated_window=2)
    with CaptureWriter(
        sim_path, WORLD_SIM,
        label="SimCluster n=4 library 1350B agreed, seed=1",
    ) as writer:
        cluster = SimCluster(4, GIGABIT, LIBRARY, config, seed=1)
        cluster.attach_capture(writer)
        cluster.inject_at_rate(40e6, args.duration)
        cluster.run(args.duration, 0.0, offered_bps=40e6)
    print("wrote %s (%d records)" % (sim_path, writer.records_written))

    emu_path = os.path.join(args.out_dir, "emu_sample.rcap")
    with CaptureWriter(
        emu_path, WORLD_EMULATION,
        label="EmulatedRing n=3 over localhost UDP, 12 agreed messages",
    ) as writer:
        with EmulatedRing(3, capture=writer) as ring:
            for pid in range(3):
                for i in range(4):
                    ring.submit(pid, ("sample", pid, i), Service.AGREED)
            ring.collect_deliveries(expected_per_node=12, timeout_s=20.0)
            time.sleep(0.05)  # let in-flight token sends reach the tap
    print("wrote %s (%d records)" % (emu_path, writer.records_written))
    return 0


def _traced_reference_run(seed: int, n_nodes: int, duration_s: float,
                          offered_bps: float, trace: bool = True):
    """One small seeded SimCluster run; the CLI observability workload.

    Returns ``(cluster, result, tracer)``; ``tracer`` is None when
    ``trace`` is False.  Warmup is zero and packing stays off so every
    delivery chain in the trace reconciles exactly against the latency
    recorder.
    """
    from .core import ProtocolConfig
    from .net import GIGABIT
    from .sim import LIBRARY
    from .sim.cluster import SimCluster

    config = ProtocolConfig.accelerated(
        personal_window=4, accelerated_window=2
    )
    cluster = SimCluster(n_nodes, GIGABIT, LIBRARY, config, seed=seed)
    tracer = None
    if trace:
        tracer = cluster.attach_tracer(
            label="SimCluster n=%d library agreed, seed=%d"
                  % (n_nodes, seed)
        )
    cluster.inject_at_rate(offered_bps, duration_s)
    result = cluster.run(duration_s, 0.0, offered_bps=offered_bps)
    return cluster, result, tracer


def run_report_command(argv: List[str]) -> int:
    """The ``report`` tool: metrics-registry snapshot, table or JSON.

    With a snapshot path, pretty-prints (or re-emits) an existing
    registry snapshot; without one, runs the small seeded reference
    workload and reports its live registry.
    """
    import json

    from .obs.report import format_metrics

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli report",
        description="Render a MetricsRegistry snapshot (existing JSON "
                    "file, or a fresh seeded reference run).",
    )
    parser.add_argument(
        "snapshot", nargs="?", default=None,
        help="existing snapshot JSON to render (default: run the "
             "seeded reference workload and snapshot it)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the JSON snapshot instead of the table",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the JSON snapshot to PATH",
    )
    parser.add_argument(
        "--multiring", action="store_true",
        help="run the seeded M=2 multi-ring reference workload instead "
             "and report its merge-layer registry (multiring.*)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--duration", type=float, default=0.02,
                        help="simulated seconds (default: 0.02)")
    parser.add_argument("--rate", type=float, default=200e6,
                        help="offered load in bps (default: 200e6)")
    args = parser.parse_args(argv)

    if args.snapshot is not None:
        with open(args.snapshot) as handle:
            snapshot = json.load(handle)
    elif args.multiring:
        from .multiring.sim import MultiRingSimCluster

        cluster = MultiRingSimCluster(2, n_nodes=args.nodes, seed=args.seed)
        result = cluster.run(
            duration_s=max(args.duration, 0.05), warmup_s=0.01,
            offered_per_ring_bps=args.rate,
        )
        if not result.ok:
            for violation in (result.evs_violations
                              + result.cross_ring_violations)[:5]:
                print("violation: %s" % violation, file=sys.stderr)
            return 1
        snapshot = cluster.metrics.snapshot()
    else:
        cluster, _result, _tracer = _traced_reference_run(
            args.seed, args.nodes, args.duration, args.rate, trace=False,
        )
        snapshot = cluster.metrics.snapshot()

    rendered = json.dumps(snapshot, indent=2, sort_keys=True)
    if args.out is not None:
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print("wrote %s" % args.out, file=sys.stderr)
    print(rendered if args.as_json else format_metrics(snapshot))
    return 0


def run_trace_analyze_command(argv: List[str]) -> int:
    """The ``trace-analyze`` tool: decompose a lifecycle trace."""
    import json

    from .obs.report import analyze_path, format_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli trace-analyze",
        description="Per-stage latency decomposition of a lifecycle "
                    "trace (.rtrace binary or .jsonl).",
    )
    parser.add_argument("trace", help="path to the trace file")
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="how many slowest deliveries to list (default: 10)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full analysis as JSON instead of the report",
    )
    args = parser.parse_args(argv)
    report = analyze_path(args.trace, top_n=args.top)
    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    return 0


def run_obs_sample_command(argv: List[str]) -> int:
    """Produce the reference observability artifacts from one run.

    One seeded sim run yields the committed sample trace (binary and
    JSONL flavors carry identical records) and the matching metrics
    snapshot; ``trace-analyze`` and ``report`` render them.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli obs-sample",
        description="Generate the reference .rtrace/.jsonl trace and "
                    "metrics snapshot from a seeded sim run.",
    )
    parser.add_argument(
        "--out-dir", default=os.path.join("bench_results", "obs"),
        help="directory for sim_sample.rtrace/.jsonl and "
             "metrics_sample.json",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--duration", type=float, default=0.02,
                        help="simulated seconds (default: 0.02)")
    parser.add_argument("--rate", type=float, default=200e6,
                        help="offered load in bps (default: 200e6)")
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)

    cluster, result, tracer = _traced_reference_run(
        args.seed, args.nodes, args.duration, args.rate,
    )
    trace_path = tracer.write(
        os.path.join(args.out_dir, "sim_sample.rtrace")
    )
    jsonl_path = tracer.write_jsonl(
        os.path.join(args.out_dir, "sim_sample.jsonl")
    )
    print("wrote %s (%d records)" % (trace_path, len(tracer)))
    print("wrote %s (%d records)" % (jsonl_path, len(tracer)))

    metrics_path = os.path.join(args.out_dir, "metrics_sample.json")
    cluster.metrics.write_json(metrics_path)
    print("wrote %s (%d cluster metrics)"
          % (metrics_path, len(cluster.metrics.names())))
    print("run: %d latency samples, agreed mean %.1f us"
          % (result.latency.count, result.latency.mean_s * 1e6))
    return 0


def run_lint_command(argv: List[str]) -> int:
    """The ``lint`` tool: repo-specific static analysis as a hard gate.

    Exit status: 0 when every finding is baselined (or there are none),
    1 on any new finding or parse error, 2 on bad usage.
    """
    import json
    import time

    from . import analysis

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli lint",
        description="Determinism, sans-IO-boundary, __slots__ and "
                    "wire-drift lints over the repro package "
                    "(DESIGN.md section 14).",
    )
    parser.add_argument(
        "root", nargs="?", default=None,
        help="package directory to lint (default: the installed "
             "repro package)",
    )
    parser.add_argument(
        "--json", metavar="FILE", dest="json_out", default=None,
        help="write the full JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="suppression baseline (default: lint_baseline.json in "
             "the CWD or next to the package)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: report and gate on everything",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to suppress every current finding, "
             "then exit 0",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-finding lines; print only the summary",
    )
    args = parser.parse_args(argv)

    package_root = args.root
    if package_root is None:
        package_root = os.path.dirname(os.path.abspath(__file__))
    if not os.path.isdir(package_root):
        print("lint: no such directory: %s" % package_root,
              file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None:
        candidates = [
            analysis.DEFAULT_BASELINE_NAME,
            os.path.join(package_root, os.pardir, os.pardir,
                         analysis.DEFAULT_BASELINE_NAME),
        ]
        for candidate in candidates:
            if os.path.exists(candidate):
                baseline_path = candidate
                break
        else:
            baseline_path = candidates[0]

    started = time.perf_counter()
    report = analysis.analyze_tree(package_root)
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        analysis.write_baseline(baseline_path, report.findings)
        print("lint: wrote %s suppressing %d finding(s)"
              % (baseline_path, len(report.findings)))
        return 0

    baseline = set() if args.no_baseline else \
        analysis.load_baseline(baseline_path)
    split = analysis.split_by_baseline(report.findings, baseline)
    new, baselined = split["new"], split["baselined"]

    if args.json_out is not None:
        payload = report.to_dict()
        payload["baseline"] = baseline_path
        payload["baselined_count"] = len(baselined)
        payload["new_count"] = len(new)
        payload["new"] = [f.to_dict() for f in new]
        rendered = json.dumps(payload, indent=2, sort_keys=True)
        if args.json_out == "-":
            print(rendered)
        else:
            directory = os.path.dirname(args.json_out)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.json_out, "w") as handle:
                handle.write(rendered + "\n")

    if not args.quiet:
        for finding in new:
            print(finding.render())
        for error in report.parse_errors:
            print("parse error: %s" % error)
    stale = baseline - {f.fingerprint for f in baselined}
    print(
        "lint: %d file(s), %d finding(s) (%d new, %d baselined), "
        "%.2fs" % (report.files_scanned, len(report.findings),
                   len(new), len(baselined), elapsed),
        file=sys.stderr,
    )
    if stale and not args.quiet:
        print(
            "lint: %d stale baseline entr%s (fixed findings still "
            "suppressed) — rerun with --write-baseline to prune"
            % (len(stale), "y" if len(stale) == 1 else "ies"),
            file=sys.stderr,
        )
    return 1 if (new or report.parse_errors) else 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return run_lint_command(argv[1:])
    if argv and argv[0] == "decode":
        return run_decode_command(argv[1:])
    if argv and argv[0] == "capture-sample":
        return run_capture_sample_command(argv[1:])
    if argv and argv[0] == "churn":
        return run_churn_command(argv[1:])
    if argv and argv[0] == "multiring":
        return run_multiring_command(argv[1:])
    if argv and argv[0] == "report":
        return run_report_command(argv[1:])
    if argv and argv[0] == "trace-analyze":
        return run_trace_analyze_command(argv[1:])
    if argv and argv[0] == "obs-sample":
        return run_obs_sample_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Reproduce figures from 'Fast Total Ordering for "
                    "Modern Data Centers'.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig1), 'all', 'list', 'campaign', "
             "'churn', 'multiring', 'decode', 'capture-sample', "
             "'report', 'trace-analyze', 'obs-sample', or 'lint'",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="denser, longer sweeps (sets REPRO_BENCH_FULL=1)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress",
    )
    parser.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes per sweep (default: REPRO_BENCH_PROCESSES "
             "or serial); sweep points are independent simulations, so "
             "results are identical at any worker count",
    )
    campaign_group = parser.add_argument_group(
        "campaign options (experiment 'campaign')"
    )
    campaign_group.add_argument(
        "--seed", type=int, default=1,
        help="campaign seed; schedules, loss and workload all derive "
             "from it (default: 1)",
    )
    campaign_group.add_argument(
        "--scenarios", type=int, default=10,
        help="number of random fault scenarios (default: 10)",
    )
    campaign_group.add_argument(
        "--nodes", type=int, default=3,
        help="cluster size per scenario (default: 3)",
    )
    campaign_group.add_argument(
        "--out-dir", default=os.path.join("bench_results", "campaigns"),
        help="where summaries and repro files land",
    )
    campaign_group.add_argument(
        "--selftest-violation", action="store_true",
        help="deterministically corrupt one log before checking, to "
             "prove the checker catches ordering violations and emits "
             "a shrunk repro",
    )
    args = parser.parse_args(argv)

    if args.experiment == "campaign":
        return run_campaign_command(args)
    if args.experiment == "list":
        for figure_id in _available():
            print(figure_id)
        return 0
    if args.full:
        os.environ["REPRO_BENCH_FULL"] = "1"
    targets = _available() if args.experiment == "all" else [args.experiment]
    for target in targets:
        blocks = run_figure_by_id(
            target, verbose=not args.quiet, processes=args.processes
        )
        for block in blocks:
            print(block)
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
