"""M sharded rings + the merge driver, on the packet-level simulator.

:class:`MultiRingSimCluster` composes M independent
:class:`~repro.sim.cluster.SimCluster` fabrics — each its own switch,
NICs, token and Participant engines — shards spreadlike groups across
them with :class:`~repro.multiring.partition.RingPartitioner`, runs a
rate-driven per-group workload, and feeds every node's delivered
stream through :class:`~repro.multiring.merge.RoundMerger` to produce
the global cross-ring total order.

Round markers are injected *in band*: one marker source per ring (its
leader node) submits a :class:`~repro.multiring.messages.RoundMarker`
as a regular agreed message every ``round_interval_s``, so the round
boundaries are part of each ring's total order and every member chops
identically.  Markers keep flowing through the drain phase after data
injection stops, which closes the tail rounds on every node — that is
what makes the post-run merged orders byte-identical across observers
rather than merely prefix-consistent.

Checking is two-layer, exactly as the issue specifies:

* per ring, the EVS checker is the ordering oracle — every node's
  delivered stream is wrapped into an EVS app-log (one regular
  configuration, the static ring) and all axioms must hold;
* across rings, :class:`~repro.multiring.checker.CrossRingChecker`
  asserts the merged order is a legal interleaving of the per-ring
  agreed orders and that every observer fingerprint agrees.

The rings do not share a simulated clock: they are independent fabrics
whose only coupling is the deterministic merge function, so running
them sequentially is equivalent to running them in parallel — which is
precisely the property that makes multi-ring scale-out linear.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core import ProtocolConfig, Service
from ..evs import EVSChecker
from ..evs.configuration import AppMessage, ConfigChange, Configuration
from ..net import GIGABIT, LinkSpec, Timeout
from ..obs.registry import MetricsRegistry
from ..sim.cluster import SimCluster, SimResult
from ..sim.profiles import LIBRARY, CostProfile
from .checker import CrossRingChecker
from .merge import MergedEntry, RoundMerger, merge_fingerprint
from .messages import MARKER_WIRE_SIZE, RoundMarker
from .partition import RingPartitioner


def _default_config() -> ProtocolConfig:
    return ProtocolConfig.accelerated(personal_window=10,
                                      accelerated_window=8)


@dataclass
class MultiRingResult:
    """Everything one multi-ring run yields."""

    n_rings: int
    n_nodes: int
    groups_per_ring: int
    payload_size: int
    offered_per_ring_bps: float
    duration_s: float
    warmup_s: float
    #: One SimResult per ring (its private fabric's view of the run).
    per_ring: List[SimResult]
    #: Delivered data messages/s summed over rings (measure window,
    #: observed at one member per ring — the paper's aggregate axis).
    aggregate_msgs_per_s: float
    aggregate_mbps: float
    #: Median over groups of each group's median agreed latency (s),
    #: plus the worst group's median — the "stays flat" axis.
    group_latency_p50_s: float
    group_latency_p50_max_s: float
    group_latencies: Dict[str, float] = field(default_factory=dict)
    #: Merge-layer accounting (canonical observer).
    rounds_merged: int = 0
    skips_filled: int = 0
    entries_merged: int = 0
    markers_seen: int = 0
    max_ring_lag_rounds: int = 0
    merged_fingerprint: str = ""
    #: EVS violations per ring + cross-ring violations (empty = pass).
    evs_violations: List[str] = field(default_factory=list)
    cross_ring_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.evs_violations and not self.cross_ring_violations


class MultiRingSimCluster:
    """Build and run one M-ring sharded deployment."""

    def __init__(
        self,
        n_rings: int,
        n_nodes: int = 4,
        groups_per_ring: int = 4,
        spec: LinkSpec = GIGABIT,
        profile: CostProfile = LIBRARY,
        config: Optional[ProtocolConfig] = None,
        payload_size: int = 1350,
        round_interval_s: float = 0.002,
        seed: int = 1,
        idle_rings: Tuple[int, ...] = (),
    ) -> None:
        if n_rings < 1:
            raise ValueError("need at least one ring")
        self.n_rings = n_rings
        self.n_nodes = n_nodes
        self.groups_per_ring = groups_per_ring
        self.spec = spec
        self.profile = profile
        self.config = config or _default_config()
        self.payload_size = payload_size
        self.round_interval_s = round_interval_s
        self.seed = seed
        #: Rings whose groups get no injected load (skip-path exercise).
        self.idle_rings = tuple(idle_rings)
        self.partitioner = RingPartitioner(n_rings)
        #: Per-ring group lists, placed by rendezvous hashing.
        self.shards = self.partitioner.fill(groups_per_ring)
        #: ring -> pid -> [(deliver_time_s, DataMessage)] — every node's
        #: delivered stream, the merge layer's input.
        self.streams: List[Dict[int, List[Tuple[float, Any]]]] = []
        self.rings: List[SimCluster] = []
        for ring_index in range(n_rings):
            streams = {pid: [] for pid in range(n_nodes)}
            self.streams.append(streams)
            self.rings.append(self._build_ring(ring_index, streams))
        #: The canonical merger (fed from each ring's member 0); other
        #: observers are merged post-run for the agreement check.
        self.merger = RoundMerger(n_rings)
        self.metrics = MetricsRegistry()
        self._register_metrics()
        self._ran = False

    def _build_ring(
        self, ring_index: int,
        streams: Dict[int, List[Tuple[float, Any]]],
    ) -> SimCluster:
        holder: Dict[str, Any] = {}

        def deliver(pid: int, message: Any) -> None:
            streams[pid].append((holder["sim"].now, message))

        cluster = SimCluster(
            self.n_nodes, self.spec, self.profile, self.config,
            payload_size=self.payload_size, service=Service.AGREED,
            seed=self.seed * 1000003 + ring_index,
            deliver_callback=deliver, ring_id=ring_index,
        )
        holder["sim"] = cluster.sim
        return cluster

    def _register_metrics(self) -> None:
        """Merge-layer counters under the ``multiring.*`` namespace.

        All bound views over the canonical merger's plain attributes —
        snapshots read them for free, the merge hot path pays nothing.
        """
        metrics = self.metrics
        merger = self.merger
        for name in ("rounds_merged", "skips_filled", "entries_merged",
                     "markers_seen"):
            metrics.bind("multiring.merge." + name, merger, name)
        metrics.bind_fn("multiring.merge.frontier_round",
                        (lambda: merger.frontier), kind="gauge")
        for ring_index in range(self.n_rings):
            metrics.bind_fn(
                "multiring.merge.ring_lag_rounds",
                (lambda i=ring_index: merger.ring_lag(i)),
                node=ring_index, kind="gauge",
            )
            metrics.bind_fn(
                "multiring.merge.pending_entries",
                (lambda i=ring_index: merger.pending_entries(i)),
                node=ring_index, kind="gauge",
            )
            metrics.bind_fn(
                "multiring.ring.groups",
                (lambda i=ring_index: len(self.shards[i])),
                node=ring_index, kind="gauge",
            )
            metrics.bind_fn(
                "multiring.ring.delivered_entries",
                (lambda i=ring_index: len(self.streams[i][0])),
                node=ring_index, kind="counter",
            )

    # -- workload ----------------------------------------------------------

    def _group_injector(self, cluster: SimCluster, node, group: str,
                        interval: float, rng: random.Random,
                        duration_s: float):
        # Stagger group start phases so rings do not tick in lockstep.
        yield Timeout(interval * rng.random())
        count = 0
        while cluster.sim.now < duration_s:
            node.submit((group, count), Service.AGREED, self.payload_size)
            count += 1
            yield Timeout(interval * (1.0 + 0.1 * (rng.random() - 0.5)))

    def _marker_injector(self, cluster: SimCluster, node, ring_index: int,
                         stop_s: float):
        round_number = 1
        while True:
            yield Timeout(self.round_interval_s)
            if cluster.sim.now >= stop_s:
                return
            node.submit(RoundMarker(ring_index, round_number),
                        Service.AGREED, MARKER_WIRE_SIZE)
            round_number += 1

    # -- execution ---------------------------------------------------------

    def run(
        self,
        duration_s: float = 0.3,
        warmup_s: float = 0.1,
        drain_s: float = 0.06,
        offered_per_ring_bps: float = 320e6,
    ) -> MultiRingResult:
        """Run every ring, merge, check, and summarize.

        Data injection stops at ``duration_s``; markers keep flowing for
        half the drain so every in-flight round closes on every node,
        then the last half of the drain lets the final marker reach all
        members.  Rings run sequentially — they share nothing but the
        merge function, so this is exactly equivalent to a parallel run.
        """
        if self._ran:
            raise RuntimeError("cluster already ran")
        self._ran = True
        horizon_s = duration_s + drain_s
        marker_stop_s = duration_s + drain_s * 0.5
        per_ring_results: List[SimResult] = []
        for ring_index, cluster in enumerate(self.rings):
            groups = self.shards[ring_index]
            loaded = ring_index not in self.idle_rings
            if groups and loaded:
                per_group_bps = offered_per_ring_bps / len(groups)
                interval = (self.payload_size * 8.0) / per_group_bps
                for group_pos, group in enumerate(groups):
                    sender = cluster.nodes[group_pos % self.n_nodes]
                    rng = random.Random(
                        self.seed * 0x9E3779B1 + ring_index * 101 + group_pos
                    )
                    cluster.sim.spawn(
                        self._group_injector(cluster, sender, group,
                                             interval, rng, duration_s),
                        "mr%d-%s" % (ring_index, group),
                    )
            leader = cluster.nodes[cluster.ring.leader]
            cluster.sim.spawn(
                self._marker_injector(cluster, leader, ring_index,
                                      marker_stop_s),
                "mrmark%d" % ring_index,
            )
            per_ring_results.append(cluster.run(
                horizon_s, warmup_s,
                offered_bps=offered_per_ring_bps if loaded else 0.0,
            ))
        return self._summarize(duration_s, warmup_s, offered_per_ring_bps,
                               per_ring_results)

    # -- analysis ----------------------------------------------------------

    def _data_entries(self, ring_index: int, pid: int):
        """(seq, sender, payload) data order one node saw (no markers)."""
        return [
            (m.seq, m.pid, m.payload)
            for _t, m in self.streams[ring_index][pid]
            if type(m.payload) is not RoundMarker
        ]

    def _merge_from(self, node_of_ring: List[int]) -> List[MergedEntry]:
        """Merge one observer selection (ring i read at node_of_ring[i])."""
        merger = RoundMerger(self.n_rings)
        for ring_index in range(self.n_rings):
            for _t, message in self.streams[ring_index][node_of_ring[ring_index]]:
                merger.push(ring_index, message.seq, message.pid,
                            message.payload)
        return merger.merged

    def _evs_logs(self, ring_index: int) -> Dict[int, List[Any]]:
        """Wrap each node's delivered stream as an EVS app-log."""
        members = tuple(range(self.n_nodes))
        logs: Dict[int, List[Any]] = {}
        for pid in members:
            configuration = Configuration.regular(ring_index, members)
            log: List[Any] = [ConfigChange(configuration)]
            for _t, message in self.streams[ring_index][pid]:
                log.append(AppMessage(
                    ring_id=ring_index, seq=message.seq, sender=message.pid,
                    payload=message.payload,
                    safe=message.service is Service.SAFE,
                ))
            logs[pid] = log
        return logs

    def check(self) -> Tuple[List[str], List[str]]:
        """Run both oracles; returns (evs, cross-ring) violation lists."""
        evs_violations: List[str] = []
        for ring_index in range(self.n_rings):
            checker = EVSChecker()
            checker.check_logs(self._evs_logs(ring_index))
            evs_violations.extend(
                "ring %d %s" % (ring_index, v) for v in checker.violations
            )
        ring_orders = {
            ring_index: self._data_entries(ring_index, 0)
            for ring_index in range(self.n_rings)
        }
        fingerprints = {
            pid: merge_fingerprint(self._merge_from([pid] * self.n_rings))
            for pid in range(self.n_nodes)
        }
        cross = CrossRingChecker()
        cross.check(self.merger.merged, ring_orders, fingerprints)
        return evs_violations, cross.violations

    def _summarize(
        self, duration_s: float, warmup_s: float,
        offered_per_ring_bps: float,
        per_ring_results: List[SimResult],
    ) -> MultiRingResult:
        # Feed the canonical merger: each ring read at its member 0.
        for ring_index in range(self.n_rings):
            for _t, message in self.streams[ring_index][0]:
                self.merger.push(ring_index, message.seq, message.pid,
                                 message.payload)

        window = duration_s - warmup_s
        total_msgs = 0
        group_samples: Dict[str, List[float]] = {}
        for ring_index in range(self.n_rings):
            for t, message in self.streams[ring_index][0]:
                payload = message.payload
                if type(payload) is RoundMarker:
                    continue
                if warmup_s <= t <= duration_s:
                    total_msgs += 1
                    if message.submitted_at is not None \
                            and message.submitted_at >= warmup_s:
                        group_samples.setdefault(payload[0], []).append(
                            t - message.submitted_at
                        )
        group_p50s: Dict[str, float] = {}
        for group, samples in group_samples.items():
            ordered = sorted(samples)
            group_p50s[group] = ordered[len(ordered) // 2]
        ordered_p50s = sorted(group_p50s.values())
        p50_median = (
            ordered_p50s[len(ordered_p50s) // 2] if ordered_p50s else 0.0
        )
        p50_max = ordered_p50s[-1] if ordered_p50s else 0.0

        evs_violations, cross_violations = self.check()
        return MultiRingResult(
            n_rings=self.n_rings,
            n_nodes=self.n_nodes,
            groups_per_ring=self.groups_per_ring,
            payload_size=self.payload_size,
            offered_per_ring_bps=offered_per_ring_bps,
            duration_s=duration_s,
            warmup_s=warmup_s,
            per_ring=per_ring_results,
            aggregate_msgs_per_s=total_msgs / window if window > 0 else 0.0,
            aggregate_mbps=(
                total_msgs * self.payload_size * 8.0 / window / 1e6
                if window > 0 else 0.0
            ),
            group_latency_p50_s=p50_median,
            group_latency_p50_max_s=p50_max,
            group_latencies={g: p for g, p in sorted(group_p50s.items())},
            rounds_merged=self.merger.rounds_merged,
            skips_filled=self.merger.skips_filled,
            entries_merged=self.merger.entries_merged,
            markers_seen=self.merger.markers_seen,
            max_ring_lag_rounds=max(
                self.merger.ring_lag(i) for i in range(self.n_rings)
            ),
            merged_fingerprint=merge_fingerprint(self.merger.merged),
            evs_violations=evs_violations,
            cross_ring_violations=cross_violations,
        )
