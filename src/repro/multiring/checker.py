"""Cross-ring ordering oracle for the merge layer.

The per-ring oracle is the EVS checker (each ring's members must agree
on that ring's order); this module checks the layer above: the *global*
merged order must be a legal interleaving of the per-ring agreed
orders, identical at every observer.  Violations are collected, not
raised, mirroring :class:`repro.evs.checker.EVSChecker` so campaign
runners can report everything that went wrong in one pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .merge import MergedEntry


class CrossRingViolation(AssertionError):
    """The merged order is not a legal interleaving of ring orders."""


class CrossRingChecker:
    """Validates one merged order against its per-ring sources."""

    def __init__(self) -> None:
        self.violations: List[str] = []

    # -- individual checks -------------------------------------------------

    def check_round_structure(self, merged: Sequence[MergedEntry]) -> None:
        """Rounds never go backwards; within a round, rings are visited
        in ascending ring order — the deterministic merge shape."""
        last = (0, -1)
        for entry in merged:
            position = (entry.round, entry.ring_index)
            if position < last:
                self.violations.append(
                    "merge structure violated: entry %r after round/ring "
                    "position %r" % (entry, last)
                )
                return
            last = position

    def check_no_duplicates(self, merged: Sequence[MergedEntry]) -> None:
        seen = set()
        for entry in merged:
            key = entry.key()
            if key in seen:
                self.violations.append(
                    "duplicate merge of ring message %r" % (key,)
                )
                return
            seen.add(key)

    def check_legal_interleaving(
        self,
        merged: Sequence[MergedEntry],
        ring_orders: Dict[int, Sequence[Tuple[int, int, object]]],
    ) -> None:
        """Projecting the merged order onto one ring must give a prefix
        of that ring's agreed (seq, sender, payload) data order.

        A *prefix*, not the whole stream: messages delivered after a
        ring's last closed round are still waiting for their marker.
        Anything reordered, dropped mid-stream, or invented by the
        merge breaks the prefix property.
        """
        projections: Dict[int, List[Tuple[int, int, object]]] = {
            ring_index: [] for ring_index in ring_orders
        }
        for entry in merged:
            if entry.ring_index not in projections:
                self.violations.append(
                    "merged entry %r names unknown ring %d"
                    % (entry, entry.ring_index)
                )
                return
            projections[entry.ring_index].append(
                (entry.ring_seq, entry.sender, entry.payload)
            )
        for ring_index, projection in sorted(projections.items()):
            source = list(ring_orders[ring_index])
            if projection != source[: len(projection)]:
                mismatch = next(
                    (i for i, (a, b) in enumerate(zip(projection, source))
                     if a != b),
                    min(len(projection), len(source)),
                )
                self.violations.append(
                    "merged order is not an interleaving of ring %d's "
                    "agreed order: first divergence at projected index "
                    "%d (%r vs %r)"
                    % (ring_index, mismatch,
                       projection[mismatch] if mismatch < len(projection)
                       else "<past end>",
                       source[mismatch] if mismatch < len(source)
                       else "<past end>")
                )

    def check_observer_agreement(
        self, fingerprints: Dict[object, str]
    ) -> None:
        """Every observer's merged order carries the same fingerprint."""
        distinct = sorted(set(fingerprints.values()))
        if len(distinct) > 1:
            self.violations.append(
                "observers disagree on the merged order: %d distinct "
                "fingerprints across %r"
                % (len(distinct), sorted(fingerprints))
            )

    # -- the full oracle ---------------------------------------------------

    def check(
        self,
        merged: Sequence[MergedEntry],
        ring_orders: Dict[int, Sequence[Tuple[int, int, object]]],
        observer_fingerprints: Optional[Dict[object, str]] = None,
    ) -> List[str]:
        """Run every cross-ring axiom; returns accumulated violations."""
        self.check_round_structure(merged)
        self.check_no_duplicates(merged)
        self.check_legal_interleaving(merged, ring_orders)
        if observer_fingerprints:
            self.check_observer_agreement(observer_fingerprints)
        return self.violations

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_ok(self) -> None:
        if self.violations:
            raise CrossRingViolation(
                "%d cross-ring violation(s):\n%s"
                % (len(self.violations), "\n".join(self.violations))
            )
