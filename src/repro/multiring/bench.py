"""Multi-ring scaling sweep -> ``bench_results/multiring_scaling.json``.

One record answers the scale-out question the subsystem exists for:
does aggregate delivered throughput grow near-linearly in the number of
rings M while each group's agreed latency stays flat?  Every point runs
the same per-ring workload (4 nodes/ring, 4 groups/ring, 1350-byte
agreed messages at a fixed per-ring rate), so M rings offer M times the
load and perfect sharding delivers M times the throughput at unchanged
latency — Multi-Ring Paxos's claim, rebuilt on accelerated rings.

All measured quantities are *simulated-time* rates and latencies:
machine-independent, byte-stable for a given seed, and therefore safe
to guard with :mod:`repro.bench.guard` at its normal tolerance.  The
guarded metrics are the M=4 aggregate rate, the M=4/M=1 scaling factor
(target: >= 3.0x), and the latency-flatness ratio min(p50)/max(p50)
between M=1 and M=4 (target: >= 0.85, i.e. within 15%).

Every point also runs both ordering oracles — per-ring EVS and the
cross-ring merge checker — and the record carries their violation
counts, so a scaling number from a run that broke ordering can never
look healthy.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Sequence

from .sim import MultiRingResult, MultiRingSimCluster

DEFAULT_RECORD_PATH = os.path.join("bench_results", "multiring_scaling.json")

#: The swept ring counts; 1 is the baseline every ratio is against.
DEFAULT_MS = (1, 2, 4, 8)

#: The workload behind every point (see module docstring).
N_NODES = 4
GROUPS_PER_RING = 4
PAYLOAD_SIZE = 1350
OFFERED_PER_RING_BPS = 320e6
ROUND_INTERVAL_S = 0.002
DURATION_S = 0.3
WARMUP_S = 0.1
DRAIN_S = 0.06


def run_point(n_rings: int, seed: int = 1) -> MultiRingResult:
    """One sweep point: build, run and check an M-ring deployment."""
    cluster = MultiRingSimCluster(
        n_rings,
        n_nodes=N_NODES,
        groups_per_ring=GROUPS_PER_RING,
        payload_size=PAYLOAD_SIZE,
        round_interval_s=ROUND_INTERVAL_S,
        seed=seed,
    )
    return cluster.run(
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        drain_s=DRAIN_S,
        offered_per_ring_bps=OFFERED_PER_RING_BPS,
    )


def _entry(result: MultiRingResult) -> Dict[str, Any]:
    return {
        "m": result.n_rings,
        "aggregate_msgs_per_s": round(result.aggregate_msgs_per_s, 1),
        "aggregate_mbps": round(result.aggregate_mbps, 2),
        "group_latency_p50_us": round(result.group_latency_p50_s * 1e6, 2),
        "group_latency_p50_max_us": round(
            result.group_latency_p50_max_s * 1e6, 2
        ),
        "rounds_merged": result.rounds_merged,
        "skips_filled": result.skips_filled,
        "entries_merged": result.entries_merged,
        "max_ring_lag_rounds": result.max_ring_lag_rounds,
        "merged_fingerprint": result.merged_fingerprint,
        "evs_violations": len(result.evs_violations),
        "cross_ring_violations": len(result.cross_ring_violations),
        "saturated_rings": sum(1 for r in result.per_ring if r.saturated),
        "per_ring_achieved_mbps": [
            round(r.achieved_mbps, 1) for r in result.per_ring
        ],
    }


def scaling_sweep(
    ms: Sequence[int] = DEFAULT_MS,
    seed: int = 1,
    progress: Optional[Any] = None,
) -> Dict[str, Any]:
    """Run every M; returns the record dict (see module docstring)."""
    entries = []
    by_m: Dict[int, MultiRingResult] = {}
    for n_rings in ms:
        result = run_point(n_rings, seed=seed)
        by_m[n_rings] = result
        entries.append(_entry(result))
        if progress is not None:
            progress(
                "M=%d  %8.0f msgs/s  %7.1f Mbps  p50 %6.1f us  "
                "rounds %d  skips %d  violations %d"
                % (n_rings, result.aggregate_msgs_per_s,
                   result.aggregate_mbps,
                   result.group_latency_p50_s * 1e6,
                   result.rounds_merged, result.skips_filled,
                   len(result.evs_violations)
                   + len(result.cross_ring_violations))
            )
    record: Dict[str, Any] = {
        "schema": 1,
        "seed": seed,
        "ms": list(ms),
        "workload": {
            "n_nodes_per_ring": N_NODES,
            "groups_per_ring": GROUPS_PER_RING,
            "payload_size": PAYLOAD_SIZE,
            "offered_per_ring_mbps": OFFERED_PER_RING_BPS / 1e6,
            "round_interval_ms": ROUND_INTERVAL_S * 1e3,
            "duration_s": DURATION_S,
            "warmup_s": WARMUP_S,
        },
        "sweep": entries,
        "metrics": {},
    }
    if 1 in by_m and 4 in by_m:
        base = by_m[1]
        quad = by_m[4]
        p50s = (base.group_latency_p50_s, quad.group_latency_p50_s)
        record["metrics"] = {
            "aggregate_msgs_per_s_m4": round(quad.aggregate_msgs_per_s, 1),
            "scaling_x_m4": round(
                quad.aggregate_msgs_per_s / base.aggregate_msgs_per_s, 3
            ),
            "latency_flatness_m4": round(min(p50s) / max(p50s), 3),
        }
        if 8 in by_m:
            record["metrics"]["scaling_x_m8"] = round(
                by_m[8].aggregate_msgs_per_s / base.aggregate_msgs_per_s, 3
            )
    return record


def total_violations(record: Dict[str, Any]) -> int:
    return sum(
        entry["evs_violations"] + entry["cross_ring_violations"]
        for entry in record["sweep"]
    )


def write_record(record: Dict[str, Any],
                 path: str = DEFAULT_RECORD_PATH) -> str:
    """Byte-stable record file (sorted keys, no wall-clock anywhere)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
