"""Deterministic round-based merge of M independent ring orders.

The construction is Multi-Ring Paxos's deterministic merge adapted to
rings of totally ordered *streams* instead of numbered consensus
instances.  Every ring's agreed stream is chopped into rounds by
in-band :class:`~repro.multiring.messages.RoundMarker` messages; the
global total order is then::

    round 1: ring 0's round-1 batch, ring 1's round-1 batch, ... ring M-1's
    round 2: ring 0's round-2 batch, ...
    ...

A merger can emit round r the moment every ring has *closed* r (its
marker for round r was delivered).  A quiet ring's markers close empty
rounds — the skip/λ mechanism: the marker source plays the role of
Multi-Ring Paxos's coordinator proposing ``skip`` instances at rate λ
so slow rings never stall the merge, and the merge's latency floor is
one marker interval plus ring delivery latency, independent of how
unbalanced the load is.

Determinism: the merged order is a pure function of the per-ring agreed
streams (markers included).  Each ring's stream is identical at every
one of its members by the ring's own agreed-order guarantee, so *any*
observer that follows one member per ring computes byte-for-byte the
same global order, regardless of the arrival interleaving across rings.
``tests/test_multiring_merge.py`` drives exactly that property with
hypothesis; :class:`~repro.multiring.checker.CrossRingChecker` asserts
it end-to-end in the packet-level sim.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from .messages import RoundMarker


class MergeError(ValueError):
    """A ring stream violated the merge protocol (bad marker order)."""


@dataclass(frozen=True)
class MergedEntry:
    """One message's position in the global cross-ring total order.

    ``ring_seq`` is the message's sequence number in its home ring's
    agreed order — (ring_index, ring_seq) is globally unique and pins
    the entry back to the per-ring order the checker validates against.
    """

    round: int
    ring_index: int
    ring_seq: int
    sender: int
    payload: object

    def key(self) -> Tuple[int, int]:
        return (self.ring_index, self.ring_seq)


class RoundMerger:
    """Incrementally merge M ring streams into the global order.

    Feed each ring's agreed stream in ring order via :meth:`push_data`
    / :meth:`push_marker` (or :meth:`push`, which dispatches on the
    payload).  Streams from different rings may be interleaved
    arbitrarily — the output never depends on the interleaving.  Merged
    entries accumulate in :attr:`merged` (and stream through
    ``on_entry`` when given, for callers that do not want to hold the
    whole order).
    """

    def __init__(
        self,
        n_rings: int,
        on_entry: Optional[Callable[[MergedEntry], None]] = None,
    ) -> None:
        if n_rings < 1:
            raise MergeError("need at least one ring, got %d" % n_rings)
        self.n_rings = n_rings
        self._on_entry = on_entry
        #: Data delivered after the last closed round, per ring.
        self._open: List[Deque[Tuple[int, int, object]]] = [
            deque() for _ in range(n_rings)
        ]
        #: Closed-but-unmerged rounds: ring -> round -> entry tuple.
        self._closed: List[Dict[int, Tuple[Tuple[int, int, object], ...]]] = [
            {} for _ in range(n_rings)
        ]
        #: The round each ring's NEXT marker will close.
        self._next_close: List[int] = [1] * n_rings
        #: The next round the merger will emit.
        self._next_merge = 1
        self.merged: List[MergedEntry] = []
        # -- metrics (registry-bindable plain attributes) ---------------
        #: Rounds fully merged into the global order.
        self.rounds_merged = 0
        #: Empty per-ring rounds merged (idle rings riding their markers).
        self.skips_filled = 0
        #: Data entries emitted into the global order.
        self.entries_merged = 0
        #: Markers consumed across all rings.
        self.markers_seen = 0

    # -- feeding -----------------------------------------------------------

    def push(self, ring_index: int, seq: int, sender: int,
             payload: object) -> None:
        """One delivered message from ``ring_index``'s agreed stream."""
        if type(payload) is RoundMarker:
            if payload.ring_index != ring_index:
                raise MergeError(
                    "ring %d delivered a marker for ring %d"
                    % (ring_index, payload.ring_index)
                )
            self.push_marker(ring_index, payload.round)
        else:
            self.push_data(ring_index, seq, sender, payload)

    def push_data(self, ring_index: int, seq: int, sender: int,
                  payload: object) -> None:
        self._open[ring_index].append((seq, sender, payload))

    def push_marker(self, ring_index: int, round_number: int) -> None:
        expected = self._next_close[ring_index]
        if round_number != expected:
            raise MergeError(
                "ring %d closed round %d out of order (expected %d) — "
                "markers are agreed-ordered, so this means the marker "
                "source skipped or repeated a round"
                % (ring_index, round_number, expected)
            )
        self.markers_seen += 1
        open_entries = self._open[ring_index]
        self._closed[ring_index][round_number] = tuple(open_entries)
        open_entries.clear()
        self._next_close[ring_index] = round_number + 1
        self._drain()

    # -- merging -----------------------------------------------------------

    def _drain(self) -> None:
        while all(self._next_merge < nc for nc in self._next_close):
            round_number = self._next_merge
            for ring_index in range(self.n_rings):
                batch = self._closed[ring_index].pop(round_number)
                if not batch:
                    self.skips_filled += 1
                    continue
                for seq, sender, payload in batch:
                    entry = MergedEntry(
                        round_number, ring_index, seq, sender, payload
                    )
                    self.merged.append(entry)
                    self.entries_merged += 1
                    if self._on_entry is not None:
                        self._on_entry(entry)
            self.rounds_merged += 1
            self._next_merge = round_number + 1

    # -- introspection -----------------------------------------------------

    @property
    def frontier(self) -> int:
        """The last globally merged round (0 before any merge)."""
        return self._next_merge - 1

    def ring_lag(self, ring_index: int) -> int:
        """How many rounds ``ring_index`` trails the fastest ring.

        The merge frontier is pinned by the *slowest* ring, so the lag
        of the laggiest ring is exactly the number of rounds the merge
        is being held back — the quantity the λ/marker rate bounds.
        """
        newest = max(self._next_close)
        return newest - self._next_close[ring_index]

    def pending_entries(self, ring_index: int) -> int:
        """Delivered-but-unmerged data entries buffered for one ring."""
        return len(self._open[ring_index]) + sum(
            len(batch) for batch in self._closed[ring_index].values()
        )


def merge_streams(
    streams: Iterable[Iterable[Tuple[int, int, object]]],
) -> List[MergedEntry]:
    """Merge complete per-ring (seq, sender, payload) streams offline."""
    streams = [list(s) for s in streams]
    merger = RoundMerger(len(streams))
    for ring_index, stream in enumerate(streams):
        for seq, sender, payload in stream:
            merger.push(ring_index, seq, sender, payload)
    return merger.merged


def merge_fingerprint(merged: Iterable[MergedEntry]) -> str:
    """Canonical digest of a merged order (byte-identity checks).

    Hashes the (round, ring, seq, sender, repr(payload)) lines, so two
    merges agree iff they emitted the same entries in the same order.
    """
    digest = hashlib.sha256()
    for entry in merged:
        digest.update(
            ("%d|%d|%d|%d|%r\n" % (
                entry.round, entry.ring_index, entry.ring_seq,
                entry.sender, entry.payload,
            )).encode("utf-8")
        )
    return digest.hexdigest()
