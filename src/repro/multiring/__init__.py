"""Multi-ring sharding with a deterministic cross-ring merge layer.

One accelerated Totem ring tops out at a handful of daemons; data-center
scale means many rings running in parallel.  This package shards
spreadlike groups across M independent rings and recovers one *global*
total order with a deterministic round-based merge, the way Multi-Ring
Paxos stretches Ring Paxos:

* :class:`~repro.multiring.partition.RingPartitioner` — stable
  group -> ring assignment (rendezvous hashing, so resizing the ring
  set only moves the minimum number of groups);
* :class:`~repro.multiring.merge.RoundMerger` — each ring's agreed
  stream is chopped into rounds by in-band
  :class:`~repro.multiring.messages.RoundMarker` messages (ordered
  through the ring itself, so every member chops identically); round r
  of the global order is ring 0's round-r batch, then ring 1's, ...
  An idle ring's marker closes an *empty* round (a "skip" in
  Multi-Ring Paxos terms), so slow or quiet rings never stall the
  merge;
* :class:`~repro.multiring.checker.CrossRingChecker` — the merged
  order must be a legal interleaving of the per-ring agreed orders,
  and byte-identical across observers.

The heavier driver layers live in explicit submodules so that the wire
codec can import :mod:`repro.multiring.messages` without dragging the
simulator in: :mod:`repro.multiring.sim` holds
``MultiRingSimCluster``; :mod:`repro.multiring.bench` holds the
scaling sweep behind ``python -m repro.cli multiring``.
"""

from .checker import CrossRingChecker, CrossRingViolation
from .merge import MergedEntry, MergeError, RoundMerger, merge_fingerprint
from .messages import MARKER_WIRE_SIZE, RoundMarker
from .partition import RingPartitioner

__all__ = [
    "CrossRingChecker",
    "CrossRingViolation",
    "MARKER_WIRE_SIZE",
    "MergeError",
    "MergedEntry",
    "RingPartitioner",
    "RoundMarker",
    "merge_fingerprint",
]
