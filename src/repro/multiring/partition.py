"""Stable group -> ring sharding.

Spreadlike groups (see :mod:`repro.spreadlike.groups`) are the unit of
ordering the application sees; the partitioner pins every group to one
of M independent rings so that all of a group's traffic flows through a
single ring and per-group ordering is inherited from that ring's agreed
order.  Cross-group (global) order is the merge layer's job.

Assignment uses rendezvous (highest-random-weight) hashing: each
(group, ring) pair gets a deterministic score and the group lives on
the highest-scoring ring.  Compared with ``hash(group) % M`` this keeps
assignments *stable under resizing* — removing a ring only moves the
groups that lived on it, and adding a ring steals roughly ``1/(M+1)``
of every ring's groups, nothing else.  Scores come from CRC-32 (the
checksum the wire format already depends on), not Python's ``hash``,
so the placement is identical across processes and interpreter runs.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Tuple


def _score(group: str, ring_index: int) -> Tuple[int, int]:
    """Deterministic rendezvous weight of ``group`` on ``ring_index``."""
    key = ("%s\x00%d" % (group, ring_index)).encode("utf-8")
    # Tie-break on ring index so equal CRCs (possible, 32-bit space)
    # still yield one well-defined winner.
    return (zlib.crc32(key), ring_index)


class RingPartitioner:
    """Maps group names onto ``n_rings`` independent rings."""

    def __init__(self, n_rings: int) -> None:
        if n_rings < 1:
            raise ValueError("need at least one ring, got %d" % n_rings)
        self.n_rings = n_rings

    def ring_of(self, group: str) -> int:
        """The ring this group's traffic is ordered on."""
        best = 0
        best_score = _score(group, 0)
        for ring_index in range(1, self.n_rings):
            score = _score(group, ring_index)
            if score > best_score:
                best = ring_index
                best_score = score
        return best

    def assignments(self, groups: Iterable[str]) -> Dict[str, int]:
        """group name -> ring index for every given group."""
        return {group: self.ring_of(group) for group in groups}

    def shards(self, groups: Iterable[str]) -> List[List[str]]:
        """Per-ring group lists (ring order; groups keep input order)."""
        out: List[List[str]] = [[] for _ in range(self.n_rings)]
        for group in groups:
            out[self.ring_of(group)].append(group)
        return out

    def fill(self, per_ring: int, prefix: str = "g") -> List[List[str]]:
        """Generate group names until every ring holds ``per_ring``.

        Walks the deterministic candidate sequence ``g000, g001, ...``
        and keeps a candidate only while its home ring still has room,
        so every ring ends up with exactly ``per_ring`` groups *placed
        by the real partitioner* (no manual override).  This is how the
        benchmark builds an evenly loaded deployment without bending
        the hashing.
        """
        if per_ring < 0:
            raise ValueError("per_ring must be >= 0")
        out: List[List[str]] = [[] for _ in range(self.n_rings)]
        needed = self.n_rings * per_ring
        placed = 0
        candidate = 0
        while placed < needed:
            group = "%s%03d" % (prefix, candidate)
            candidate += 1
            ring_index = self.ring_of(group)
            if len(out[ring_index]) < per_ring:
                out[ring_index].append(group)
                placed += 1
        return out
