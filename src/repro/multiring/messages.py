"""Merge-coordination payloads ordered through the rings themselves.

The only cross-ring coordination the merge layer needs is the round
boundary, and it travels *in band*: each ring's marker source submits a
:class:`RoundMarker` through its own ring as a regular agreed message.
Because the marker is part of the ring's total order, every member of
the ring chops the agreed stream into rounds at exactly the same
points — determinism of the global merge falls out of the determinism
of each ring, with no extra agreement protocol.

This module is deliberately dependency-free: the wire codec registers
:class:`RoundMarker` in its TLV object table, so nothing here may
import :mod:`repro.wire` (or anything heavy) back.
"""

from __future__ import annotations

from dataclasses import dataclass

#: TLV bytes one encoded RoundMarker occupies inside a data payload:
#: 1 object tag + 2 int64 fields at (1 tag + 8 value) bytes each.  The
#: simulator charges marker submissions this payload size; the codec
#: cross-check lives in tests/test_multiring_wire.py.
MARKER_WIRE_SIZE = 19


@dataclass(frozen=True)
class RoundMarker:
    """Closes merge round ``round`` for ring ``ring_index``.

    Everything the ring delivered (in agreed order) after the previous
    marker and up to this one belongs to round ``round``.  A marker
    arriving with no data before it closes an *empty* round — the
    skip/λ mechanism that keeps idle rings from stalling the merge.
    """

    ring_index: int
    round: int
